//! # amt — an HPX-like Asynchronous Many-Task runtime in Rust
//!
//! This crate is the reproduction's stand-in for **HPX**, the C++ standard
//! library for parallelism and concurrency that the SC'23 paper ports to
//! RISC-V. It provides the same programming model surface the paper's
//! benchmarks exercise:
//!
//! * **Lightweight tasks** on a work-stealing worker pool
//!   ([`Runtime`], [`Handle::spawn`]) — HPX's `hpx::async`;
//! * **Futures with continuations** ([`Future::then`], [`when_all`],
//!   [`when_any`]) forming user-defined task DAGs;
//! * **Parallel algorithms** ([`par::for_each`], [`par::transform_reduce`],
//!   [`par::for_loop`]) with execution policies `seq` / `par` / `par_unseq`
//!   — HPX's `hpx::for_each(hpx::execution::par, ...)`;
//! * **Senders & receivers** ([`sr`]) — the P2300 subset used by the paper's
//!   Maclaurin benchmark;
//! * **Coroutine-style resumable tasks** ([`coro`]) — Rust has no C++20
//!   coroutines, so "future + coroutine" is modelled as an explicitly
//!   resumable state machine whose every suspension is a scheduler round
//!   trip (the same control structure the C++ benchmark produces);
//! * **Cooperative synchronization** ([`sync::Mutex`], [`sync::Latch`],
//!   [`sync::Barrier`], [`sync::Channel`]) — HPX's `hpx::mutex` family that
//!   yields to the scheduler instead of blocking OS threads;
//! * **Instrumentation** ([`RuntimeStats`]) counting spawns, steals, parks
//!   and yields. These counts feed the `rv-machine` cost model so runtime
//!   overheads can be projected onto the paper's CPUs (RISC-V context
//!   switches are the expensive case the paper's conclusion discusses).
//!
//! Blocking a worker thread is always safe: waits performed on a worker
//! (`Future::get`, latches, scopes) *help* — they execute other ready tasks
//! while waiting, exactly like HPX suspending an hpx-thread.
//!
//! ```
//! use amt::Runtime;
//!
//! let rt = Runtime::new(4);
//! let f = rt.handle().spawn(|| 21).then(|x| x * 2);
//! assert_eq!(f.get(), 42);
//! ```

mod future;
mod runtime;

pub mod coro;
pub mod par;
pub mod sr;
pub mod sync;

pub use future::{make_ready_future, pair as future_pair, when_all, when_any, Future, Promise};
pub use runtime::{current_worker, imbalance, Handle, Runtime, RuntimeStats, WorkerStats};
