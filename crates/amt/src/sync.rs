//! Cooperative synchronization primitives — HPX's `hpx::mutex`,
//! `hpx::latch`, `hpx::barrier` and `hpx::lcos::channel`.
//!
//! The paper (§3.1) explains why these matter for an AMT: "the advantage to
//! the HPX mutex is that the runtime can switch it out instead of simply
//! blocking, allowing worker threads to continue working". Our primitives do
//! the same — a wait performed on a worker thread first spins briefly, then
//! *helps* by executing other ready tasks, and only naps as a last resort.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex as PlMutex, MutexGuard as PlGuard};

use crate::future::{make_ready_future, pair, Future, Promise};
use crate::runtime::{help_one, on_worker};

const SPINS_BEFORE_HELP: u32 = 64;

/// Spin/help/nap once; shared backoff step for all waiters.
fn backoff_step(spins: &mut u32) {
    if *spins < SPINS_BEFORE_HELP {
        *spins += 1;
        std::hint::spin_loop();
    } else if on_worker() {
        if !help_one() {
            std::thread::yield_now();
        }
    } else {
        std::thread::yield_now();
    }
}

/// A mutex that cooperates with the scheduler: a contended `lock` on a
/// worker thread executes other tasks instead of blocking the worker —
/// `hpx::mutex`.
pub struct Mutex<T> {
    inner: PlMutex<T>,
}

impl<T> Mutex<T> {
    /// New mutex owning `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: PlMutex::new(value),
        }
    }

    /// Acquire, helping the scheduler while contended.
    pub fn lock(&self) -> PlGuard<'_, T> {
        let mut spins = 0;
        loop {
            if let Some(g) = self.inner.try_lock() {
                return g;
            }
            backoff_step(&mut spins);
        }
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self) -> Option<PlGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Single-use countdown latch — `hpx::latch`.
pub struct Latch {
    remaining: AtomicU64,
    lock: PlMutex<()>,
    cv: Condvar,
}

impl Latch {
    /// Latch that opens after `count` calls to [`Latch::count_down`].
    pub fn new(count: u64) -> Self {
        Latch {
            remaining: AtomicU64::new(count),
            lock: PlMutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Decrement; opens the latch at zero. Panics on underflow.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::SeqCst);
        assert!(prev > 0, "latch counted below zero");
        if prev == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// Is the latch open?
    pub fn is_ready(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) == 0
    }

    /// Wait (helping on workers) until the latch opens.
    pub fn wait(&self) {
        let mut spins = 0;
        while !self.is_ready() {
            if on_worker() {
                backoff_step(&mut spins);
            } else {
                let mut g = self.lock.lock();
                if !self.is_ready() {
                    self.cv.wait_for(&mut g, Duration::from_millis(1));
                }
            }
        }
    }

    /// [`Latch::count_down`] then [`Latch::wait`].
    pub fn arrive_and_wait(&self) {
        self.count_down();
        self.wait();
    }
}

/// Reusable cyclic barrier for a fixed number of participants —
/// `hpx::barrier`.
pub struct Barrier {
    participants: u64,
    state: PlMutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    arrived: u64,
    generation: u64,
}

impl Barrier {
    /// Barrier for `participants` tasks/threads.
    pub fn new(participants: u64) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        Barrier {
            participants,
            state: PlMutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Arrive and wait for the rest of the generation. Returns `true` for
    /// exactly one participant per generation (the "leader").
    ///
    /// Note: unlike [`Latch::wait`] this does **not** help-execute tasks
    /// while blocked — a helped task might arrive at the same barrier and
    /// corrupt the generation accounting. Use one participant per OS worker.
    pub fn wait(&self) -> bool {
        let mut st = self.state.lock();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived == self.participants {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            true
        } else {
            while st.generation == gen {
                self.cv.wait(&mut st);
            }
            false
        }
    }
}

/// Unbounded MPMC channel whose receive side is future-based —
/// `hpx::lcos::channel`, the primitive Octo-Tiger uses for ghost-zone
/// exchange between tree nodes.
pub struct Channel<T> {
    state: PlMutex<ChanState<T>>,
}

struct ChanState<T> {
    values: VecDeque<T>,
    waiters: VecDeque<Promise<T>>,
}

impl<T: Send + 'static> Channel<T> {
    /// New empty channel.
    pub fn new() -> Self {
        Channel {
            state: PlMutex::new(ChanState {
                values: VecDeque::new(),
                waiters: VecDeque::new(),
            }),
        }
    }

    /// Send a value; wakes the oldest pending receiver if any.
    pub fn send(&self, value: T) {
        let waiter = {
            let mut st = self.state.lock();
            match st.waiters.pop_front() {
                Some(w) => Some(w),
                None => {
                    st.values.push_back(value);
                    return;
                }
            }
        };
        // Complete outside the lock: the waiter's continuation may run
        // arbitrary user code.
        waiter.expect("checked above").set_value(value);
    }

    /// Receive as a future: ready immediately if a value is queued,
    /// otherwise completed by a future `send`.
    pub fn recv(&self) -> Future<T> {
        let mut st = self.state.lock();
        if let Some(v) = st.values.pop_front() {
            return make_ready_future(v);
        }
        let (p, f) = pair();
        st.waiters.push_back(p);
        f
    }

    /// Values currently queued (not counting parked receivers).
    pub fn len(&self) -> usize {
        self.state.lock().values.len()
    }

    /// True when no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send + 'static> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{when_all, Runtime};
    use std::sync::Arc;

    #[test]
    fn mutex_excludes_under_contention() {
        let rt = Runtime::new(4);
        let m = Arc::new(Mutex::new(0u64));
        let futures: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                rt.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        when_all(futures).get();
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn mutex_try_lock_fails_when_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_into_inner() {
        assert_eq!(Mutex::new(9).into_inner(), 9);
    }

    #[test]
    fn latch_opens_after_count() {
        let rt = Runtime::new(2);
        let latch = Arc::new(Latch::new(5));
        for _ in 0..5 {
            let l = Arc::clone(&latch);
            rt.handle().spawn_detached(move || l.count_down());
        }
        latch.wait();
        assert!(latch.is_ready());
    }

    #[test]
    fn latch_zero_is_immediately_ready() {
        let l = Latch::new(0);
        assert!(l.is_ready());
        l.wait();
    }

    #[test]
    #[should_panic(expected = "latch counted below zero")]
    fn latch_underflow_panics() {
        let l = Latch::new(0);
        l.count_down();
    }

    #[test]
    fn latch_wait_on_worker_helps() {
        // Single worker: the waiting task must execute the counting tasks.
        let rt = Runtime::new(1);
        let latch = Arc::new(Latch::new(3));
        let h = rt.handle();
        let l2 = Arc::clone(&latch);
        let f = rt.spawn(move || {
            for _ in 0..3 {
                let l = Arc::clone(&l2);
                h.spawn_detached(move || l.count_down());
            }
            l2.wait();
            true
        });
        assert!(f.get());
    }

    #[test]
    fn barrier_elects_one_leader_per_generation() {
        let barrier = Arc::new(Barrier::new(4));
        for _gen in 0..3 {
            let mut handles = Vec::new();
            for _ in 0..4 {
                let b = Arc::clone(&barrier);
                handles.push(std::thread::spawn(move || b.wait()));
            }
            let leaders: usize = handles
                .into_iter()
                .map(|h| usize::from(h.join().unwrap()))
                .sum();
            assert_eq!(leaders, 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn empty_barrier_rejected() {
        let _ = Barrier::new(0);
    }

    #[test]
    fn channel_send_then_recv() {
        let ch = Channel::new();
        ch.send(1);
        ch.send(2);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.recv().get(), 1);
        assert_eq!(ch.recv().get(), 2);
        assert!(ch.is_empty());
    }

    #[test]
    fn channel_recv_before_send() {
        let rt = Runtime::new(2);
        let ch = Arc::new(Channel::new());
        let c2 = Arc::clone(&ch);
        let f = ch.recv();
        rt.handle().spawn_detached(move || c2.send(42));
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn channel_fifo_across_waiters() {
        let ch: Channel<i32> = Channel::new();
        let f1 = ch.recv();
        let f2 = ch.recv();
        ch.send(1);
        ch.send(2);
        assert_eq!(f1.get(), 1);
        assert_eq!(f2.get(), 2);
    }

    #[test]
    fn channel_many_producers_consumers() {
        let rt = Runtime::new(4);
        let ch = Arc::new(Channel::new());
        // 16 consumers first (parked), then 16 producers.
        let consumers: Vec<_> = (0..16).map(|_| ch.recv()).collect();
        for i in 0..16 {
            let c = Arc::clone(&ch);
            rt.handle().spawn_detached(move || c.send(i));
        }
        let mut got: Vec<i32> = when_all(consumers).get();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
