//! Promises and futures with continuations — HPX's `hpx::future` /
//! `hpx::promise` / `hpx::when_all` in Rust.
//!
//! Futures here are *eager* and single-ownership: a producer (task, parcel
//! handler, kernel completion) fulfils the [`Promise`]; the consumer either
//! blocks on [`Future::get`] (helping the scheduler if called on a worker
//! thread, exactly like a suspended hpx-thread frees its worker) or attaches
//! a continuation with [`Future::then`] to extend the task DAG without
//! blocking. Panics travel through the DAG: a panicking producer re-raises
//! at the eventual `get`.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::runtime::{help_one, on_worker};

type PanicPayload = Box<dyn Any + Send + 'static>;

enum Outcome<T> {
    Value(T),
    Panicked(PanicPayload),
}

type Continuation<T> = Box<dyn FnOnce(Outcome<T>) + Send + 'static>;

struct State<T> {
    outcome: Option<Outcome<T>>,
    continuation: Option<Continuation<T>>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// Producer side of a future pair; see [`pair`].
pub struct Promise<T> {
    inner: Arc<Inner<T>>,
}

/// Consumer side: a single-ownership eager future.
pub struct Future<T> {
    inner: Arc<Inner<T>>,
}

/// Create a connected promise/future pair (`hpx::promise` +
/// `promise.get_future()`).
pub fn pair<T>() -> (Promise<T>, Future<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            outcome: None,
            continuation: None,
        }),
        ready: Condvar::new(),
    });
    (
        Promise {
            inner: Arc::clone(&inner),
        },
        Future { inner },
    )
}

/// A future that is already complete (`hpx::make_ready_future`).
pub fn make_ready_future<T>(value: T) -> Future<T> {
    let (p, f) = pair();
    p.set_value(value);
    f
}

impl<T> Promise<T> {
    fn complete(&self, outcome: Outcome<T>) {
        let cont = {
            let mut st = self.inner.state.lock();
            assert!(st.outcome.is_none(), "promise already satisfied");
            match st.continuation.take() {
                Some(c) => Some((c, outcome)),
                None => {
                    st.outcome = Some(outcome);
                    self.inner.ready.notify_all();
                    None
                }
            }
        };
        if let Some((c, outcome)) = cont {
            c(outcome);
        }
    }

    /// Fulfil the promise with a value. Panics if already satisfied.
    pub fn set_value(&self, value: T) {
        self.complete(Outcome::Value(value));
    }

    /// Fulfil the promise with a panic payload; the consumer's `get`
    /// re-raises it.
    pub fn set_panic(&self, payload: PanicPayload) {
        self.complete(Outcome::Panicked(payload));
    }
}

impl<T: Send + 'static> Future<T> {
    /// Register `f` to run exactly once with the outcome (internal basis for
    /// `then`/`when_all`). Runs inline on the completing thread, or
    /// immediately if already complete.
    fn on_complete(self, f: impl FnOnce(Outcome<T>) + Send + 'static) {
        let mut f = Some(f);
        let ready = {
            let mut st = self.inner.state.lock();
            match st.outcome.take() {
                Some(o) => Some(o),
                None => {
                    assert!(
                        st.continuation.is_none(),
                        "future already has a continuation"
                    );
                    st.continuation = Some(Box::new(f.take().expect("just set")));
                    None
                }
            }
        };
        if let Some(o) = ready {
            (f.take().expect("not consumed on pending path"))(o);
        }
    }

    /// Attach a continuation, producing the future of its result —
    /// `hpx::future::then`. The continuation runs on whichever thread
    /// completes this future (HPX's `launch::sync` continuation policy);
    /// use [`Future::then_on`] to run it as a fresh task instead.
    pub fn then<U, F>(self, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (p, fut) = pair();
        self.on_complete(move |outcome| match outcome {
            Outcome::Value(v) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v))) {
                    Ok(u) => p.set_value(u),
                    Err(e) => p.set_panic(e),
                }
            }
            Outcome::Panicked(e) => p.set_panic(e),
        });
        fut
    }

    /// Attach a continuation that is *spawned* on `handle`'s runtime
    /// (HPX's `launch::async` continuation policy).
    pub fn then_on<U, F>(self, handle: &crate::Handle, f: F) -> Future<U>
    where
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (p, fut) = pair();
        let h = handle.clone();
        self.on_complete(move |outcome| match outcome {
            Outcome::Value(v) => {
                h.spawn_detached(move || {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v))) {
                        Ok(u) => p.set_value(u),
                        Err(e) => p.set_panic(e),
                    }
                });
            }
            Outcome::Panicked(e) => p.set_panic(e),
        });
        fut
    }

    /// Is the result available?
    pub fn is_ready(&self) -> bool {
        self.inner.state.lock().outcome.is_some()
    }

    /// Block until complete and return the value, re-raising producer
    /// panics. On a worker thread this *helps*: it executes other ready
    /// tasks while waiting.
    pub fn get(self) -> T {
        if on_worker() {
            loop {
                {
                    let mut st = self.inner.state.lock();
                    if let Some(o) = st.outcome.take() {
                        return unwrap_outcome(o);
                    }
                }
                if !help_one() {
                    // Nothing to help with: nap briefly on the future's own
                    // condvar (re-checked above, so a lost notify only costs
                    // the timeout).
                    let mut st = self.inner.state.lock();
                    if st.outcome.is_none() {
                        self.inner
                            .ready
                            .wait_for(&mut st, Duration::from_micros(200));
                    }
                }
            }
        } else {
            let mut st = self.inner.state.lock();
            while st.outcome.is_none() {
                self.inner.ready.wait(&mut st);
            }
            unwrap_outcome(st.outcome.take().expect("checked above"))
        }
    }

    /// Block until complete without consuming the value.
    pub fn wait(&self) {
        if on_worker() {
            while !self.is_ready() {
                if !help_one() {
                    let mut st = self.inner.state.lock();
                    if st.outcome.is_none() {
                        self.inner
                            .ready
                            .wait_for(&mut st, Duration::from_micros(200));
                    }
                }
            }
        } else {
            let mut st = self.inner.state.lock();
            while st.outcome.is_none() {
                self.inner.ready.wait(&mut st);
            }
        }
    }
}

fn unwrap_outcome<T>(o: Outcome<T>) -> T {
    match o {
        Outcome::Value(v) => v,
        Outcome::Panicked(e) => std::panic::resume_unwind(e),
    }
}

/// Combine a vector of futures into a future of the vector of results, in
/// input order — `hpx::when_all`. If any input panicked, the first observed
/// panic is re-raised by the combined future's `get`.
pub fn when_all<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<Vec<T>> {
    let n = futures.len();
    let (p, fut) = pair();
    if n == 0 {
        p.set_value(Vec::new());
        return fut;
    }
    struct Join<T> {
        slots: Mutex<JoinSlots<T>>,
        promise: Promise<Vec<T>>,
    }
    struct JoinSlots<T> {
        values: Vec<Option<T>>,
        panic: Option<PanicPayload>,
        remaining: usize,
    }
    let join = Arc::new(Join {
        slots: Mutex::new(JoinSlots {
            values: (0..n).map(|_| None).collect(),
            panic: None,
            remaining: n,
        }),
        promise: p,
    });
    for (i, f) in futures.into_iter().enumerate() {
        let j = Arc::clone(&join);
        f.on_complete(move |outcome| {
            let finished = {
                let mut s = j.slots.lock();
                match outcome {
                    Outcome::Value(v) => s.values[i] = Some(v),
                    Outcome::Panicked(e) => {
                        if s.panic.is_none() {
                            s.panic = Some(e);
                        }
                    }
                }
                s.remaining -= 1;
                s.remaining == 0
            };
            if finished {
                let mut s = j.slots.lock();
                if let Some(e) = s.panic.take() {
                    j.promise.set_panic(e);
                } else {
                    let vals = s
                        .values
                        .iter_mut()
                        .map(|v| v.take().expect("slot unfilled at join"))
                        .collect();
                    j.promise.set_value(vals);
                }
            }
        });
    }
    fut
}

/// First-completed-wins combinator — `hpx::when_any`. Resolves to
/// `(index, value)` of the first future to complete; later completions are
/// dropped. A panic from the *first* completion is propagated.
pub fn when_any<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<(usize, T)> {
    assert!(!futures.is_empty(), "when_any of zero futures");
    let (p, fut) = pair();
    let winner = Arc::new(Mutex::new(Some(p)));
    for (i, f) in futures.into_iter().enumerate() {
        let w = Arc::clone(&winner);
        f.on_complete(move |outcome| {
            if let Some(p) = w.lock().take() {
                match outcome {
                    Outcome::Value(v) => p.set_value((i, v)),
                    Outcome::Panicked(e) => p.set_panic(e),
                }
            }
        });
    }
    fut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn ready_future_gets_immediately() {
        assert_eq!(make_ready_future(5).get(), 5);
    }

    #[test]
    fn promise_then_get_off_worker() {
        let (p, f) = pair();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            p.set_value("hello");
        });
        assert_eq!(f.get(), "hello");
        t.join().unwrap();
    }

    #[test]
    fn then_chains_in_order() {
        let f = make_ready_future(1).then(|x| x + 1).then(|x| x * 10);
        assert_eq!(f.get(), 20);
    }

    #[test]
    fn then_registered_before_completion() {
        let (p, f) = pair();
        let g = f.then(|x: i32| x * 2);
        p.set_value(21);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn then_on_runs_as_task() {
        let rt = Runtime::new(2);
        let before = rt.stats().tasks_spawned;
        let f = make_ready_future(3).then_on(&rt.handle(), |x| x + 1);
        assert_eq!(f.get(), 4);
        assert!(rt.stats().tasks_spawned > before);
    }

    #[test]
    fn when_all_preserves_order() {
        let rt = Runtime::new(4);
        let futures: Vec<_> = (0..50).map(|i| rt.spawn(move || i * i)).collect();
        let all = when_all(futures).get();
        assert_eq!(all, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn when_all_empty_is_ready() {
        let f: Future<Vec<i32>> = when_all(Vec::new());
        assert!(f.is_ready());
        assert!(f.get().is_empty());
    }

    #[test]
    fn when_all_propagates_panic() {
        let rt = Runtime::new(2);
        let futures = vec![
            rt.spawn(|| 1),
            rt.spawn(|| -> i32 { panic!("inner") }),
            rt.spawn(|| 3),
        ];
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| when_all(futures).get()));
        assert!(res.is_err());
    }

    #[test]
    fn when_any_returns_first() {
        let (p_slow, f_slow) = pair();
        let f_fast = make_ready_future(9);
        let (idx, v) = when_any(vec![f_slow, f_fast]).get();
        assert_eq!((idx, v), (1, 9));
        p_slow.set_value(1); // late completion is dropped silently
    }

    #[test]
    #[should_panic(expected = "when_any of zero futures")]
    fn when_any_empty_panics() {
        let _ = when_any(Vec::<Future<i32>>::new());
    }

    #[test]
    #[should_panic(expected = "promise already satisfied")]
    fn double_set_panics() {
        let (p, _f) = pair();
        p.set_value(1);
        p.set_value(2);
    }

    #[test]
    fn panic_travels_through_then_chain() {
        let f = make_ready_future(1)
            .then(|_| -> i32 { panic!("mid-chain") })
            .then(|x| x + 1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get()));
        assert!(res.is_err());
    }

    #[test]
    fn wait_then_is_ready() {
        let rt = Runtime::new(1);
        let f = rt.spawn(|| 11);
        f.wait();
        assert!(f.is_ready());
        assert_eq!(f.get(), 11);
    }

    #[test]
    fn get_on_worker_helps() {
        // A chain deeper than the worker count: only possible if blocked
        // gets execute other tasks.
        let rt = Runtime::new(1);
        let h = rt.handle();
        let f = rt.spawn(move || {
            let futures: Vec<_> = (0..20).map(|i| h.spawn(move || i)).collect();
            futures.into_iter().map(|f| f.get()).sum::<i32>()
        });
        assert_eq!(f.get(), 190);
    }
}
