//! Senders & receivers — the std::execution (P2300) subset the paper's
//! Maclaurin benchmark uses (its Fig. 5 compares "sender & receiver" against
//! "future + coroutine" on RISC-V).
//!
//! A [`Sender`] describes asynchronous work; nothing runs until the sender
//! is [`Sender::start`]ed with a receiver (here: a boxed continuation) or
//! driven by [`sync_wait`]. Combinators build pipelines:
//!
//! ```
//! use amt::{Runtime, sr};
//! use amt::sr::Sender;
//!
//! let rt = Runtime::new(2);
//! let sum = sr::sync_wait(
//!     sr::schedule(&rt.handle())
//!         .then(|_| 40)
//!         .then(|x| x + 2),
//! );
//! assert_eq!(sum, 42);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::future::pair;
use crate::Handle;

/// A completion value paired with the continuation that consumes it — the
/// state a [`Bulk`] completion hands to whichever iteration finishes last.
type Finisher<T> = Arc<Mutex<Option<(T, Box<dyn FnOnce(T) + Send>)>>>;

/// A description of asynchronous work completing with `Output`.
pub trait Sender: Sized + Send + 'static {
    /// The value this sender completes with.
    type Output: Send + 'static;

    /// Start the work; `receiver` is invoked exactly once with the value
    /// (P2300 `set_value`).
    fn start(self, receiver: Box<dyn FnOnce(Self::Output) + Send + 'static>);

    /// The scheduler this sender completes on, if any (used by [`Bulk`] to
    /// place its iterations).
    fn scheduler(&self) -> Option<Handle> {
        None
    }

    /// Transform the completion value — `std::execution::then`.
    fn then<F, U>(self, f: F) -> Then<Self, F>
    where
        F: FnOnce(Self::Output) -> U + Send + 'static,
        U: Send + 'static,
    {
        Then { upstream: self, f }
    }

    /// Run `f(i)` for `i in 0..shape` on the completion scheduler, then pass
    /// the upstream value through — `std::execution::bulk`.
    fn bulk<F>(self, shape: usize, f: F) -> Bulk<Self, F>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        Bulk {
            upstream: self,
            shape,
            f: Arc::new(f),
        }
    }

    /// Continue on `handle`'s runtime — `std::execution::transfer`.
    fn transfer(self, handle: &Handle) -> Transfer<Self> {
        Transfer {
            upstream: self,
            handle: handle.clone(),
        }
    }
}

/// Sender of an immediate value — `std::execution::just`.
pub struct Just<T>(T);

/// Create a [`Just`] sender.
pub fn just<T: Send + 'static>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Send + 'static> Sender for Just<T> {
    type Output = T;
    fn start(self, receiver: Box<dyn FnOnce(T) + Send + 'static>) {
        receiver(self.0);
    }
}

/// Sender completing with `()` on a runtime task —
/// `std::execution::schedule(scheduler)`.
pub struct Schedule {
    handle: Handle,
}

/// Create a [`Schedule`] sender for `handle`'s runtime.
pub fn schedule(handle: &Handle) -> Schedule {
    Schedule {
        handle: handle.clone(),
    }
}

impl Sender for Schedule {
    type Output = ();
    fn start(self, receiver: Box<dyn FnOnce(()) + Send + 'static>) {
        self.handle.spawn_detached(move || receiver(()));
    }
    fn scheduler(&self) -> Option<Handle> {
        Some(self.handle.clone())
    }
}

/// Sender adaptor mapping the value; see [`Sender::then`].
pub struct Then<S, F> {
    upstream: S,
    f: F,
}

impl<S, F, U> Sender for Then<S, F>
where
    S: Sender,
    F: FnOnce(S::Output) -> U + Send + 'static,
    U: Send + 'static,
{
    type Output = U;
    fn start(self, receiver: Box<dyn FnOnce(U) + Send + 'static>) {
        let f = self.f;
        self.upstream.start(Box::new(move |v| receiver(f(v))));
    }
    fn scheduler(&self) -> Option<Handle> {
        self.upstream.scheduler()
    }
}

/// Sender adaptor running a parallel iteration space; see [`Sender::bulk`].
pub struct Bulk<S, F> {
    upstream: S,
    shape: usize,
    f: Arc<F>,
}

impl<S, F> Sender for Bulk<S, F>
where
    S: Sender,
    F: Fn(usize) + Send + Sync + 'static,
{
    type Output = S::Output;
    fn start(self, receiver: Box<dyn FnOnce(S::Output) + Send + 'static>) {
        let shape = self.shape;
        let f = self.f;
        let sched = self.upstream.scheduler();
        self.upstream.start(Box::new(move |value| {
            if shape == 0 {
                receiver(value);
                return;
            }
            match sched {
                Some(h) => {
                    let remaining = Arc::new(AtomicUsize::new(shape));
                    let fin: Finisher<S::Output> = Arc::new(Mutex::new(Some((value, receiver))));
                    for i in 0..shape {
                        let f = Arc::clone(&f);
                        let remaining = Arc::clone(&remaining);
                        let fin = Arc::clone(&fin);
                        h.spawn_detached(move || {
                            f(i);
                            if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                                if let Some((v, r)) = fin.lock().take() {
                                    r(v);
                                }
                            }
                        });
                    }
                }
                None => {
                    // No completion scheduler: run the shape inline, as a
                    // serial bulk (P2300's default for inline schedulers).
                    for i in 0..shape {
                        f(i);
                    }
                    receiver(value);
                }
            }
        }));
    }
    fn scheduler(&self) -> Option<Handle> {
        self.upstream.scheduler()
    }
}

/// Sender adaptor moving the continuation onto another runtime; see
/// [`Sender::transfer`].
pub struct Transfer<S> {
    upstream: S,
    handle: Handle,
}

impl<S: Sender> Sender for Transfer<S> {
    type Output = S::Output;
    fn start(self, receiver: Box<dyn FnOnce(S::Output) + Send + 'static>) {
        let h = self.handle;
        self.upstream.start(Box::new(move |v| {
            h.spawn_detached(move || receiver(v));
        }));
    }
    fn scheduler(&self) -> Option<Handle> {
        Some(self.handle.clone())
    }
}

/// Drive a sender to completion and return its value —
/// `std::this_thread::sync_wait`.
pub fn sync_wait<S: Sender>(sender: S) -> S::Output {
    let (promise, future) = pair();
    sender.start(Box::new(move |v| promise.set_value(v)));
    future.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn just_sync_wait() {
        assert_eq!(sync_wait(just(5)), 5);
    }

    #[test]
    fn then_chain() {
        assert_eq!(sync_wait(just(2).then(|x| x + 1).then(|x| x * 3)), 9);
    }

    #[test]
    fn schedule_runs_on_runtime() {
        let rt = Runtime::new(2);
        let before = rt.stats().tasks_spawned;
        let v = sync_wait(schedule(&rt.handle()).then(|_| 7));
        assert_eq!(v, 7);
        assert!(rt.stats().tasks_spawned > before);
    }

    #[test]
    fn bulk_runs_every_index() {
        let rt = Runtime::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let out = sync_wait(
            schedule(&rt.handle())
                .bulk(100, move |_i| {
                    h2.fetch_add(1, Ordering::Relaxed);
                })
                .then(|_| "done"),
        );
        assert_eq!(out, "done");
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn bulk_zero_shape_passes_through() {
        let rt = Runtime::new(1);
        let v = sync_wait(schedule(&rt.handle()).then(|_| 3).bulk(0, |_| {}));
        assert_eq!(v, 3);
    }

    #[test]
    fn bulk_without_scheduler_runs_inline() {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let v = sync_wait(just(1).bulk(10, move |_| {
            h2.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(v, 1);
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn transfer_moves_to_runtime() {
        let rt = Runtime::new(2);
        let before = rt.stats().tasks_spawned;
        let v = sync_wait(just(10).transfer(&rt.handle()).then(|x| x * 2));
        assert_eq!(v, 20);
        assert!(rt.stats().tasks_spawned > before);
    }

    #[test]
    fn maclaurin_shaped_pipeline() {
        // The Fig. 5 benchmark shape: schedule → bulk(partial sums) → then(collect).
        let rt = Runtime::new(4);
        let n = 10_000usize;
        let chunks = 16usize;
        let partials: Arc<Vec<Mutex<f64>>> =
            Arc::new((0..chunks).map(|_| Mutex::new(0.0)).collect());
        let p2 = Arc::clone(&partials);
        let total = sync_wait(
            schedule(&rt.handle())
                .bulk(chunks, move |c| {
                    let lo = c * n / chunks + 1;
                    let hi = (c + 1) * n / chunks;
                    let mut s = 0.0;
                    for k in lo..=hi {
                        s += 1.0 / k as f64;
                    }
                    *p2[c].lock() = s;
                })
                .then(move |_| partials.iter().map(|m| *m.lock()).sum::<f64>()),
        );
        let direct: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
        assert!((total - direct).abs() < 1e-9);
    }
}
