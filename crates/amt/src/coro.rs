//! "Future + coroutine" parallelism — the fourth style of the paper's
//! Maclaurin benchmark (Fig. 5 compares it against senders & receivers on
//! RISC-V).
//!
//! The C++ benchmark uses C++20 coroutines returning HPX futures: the
//! coroutine body suspends at `co_await` points and is resumed by the
//! scheduler. Rust has no stable equivalent, so we model a coroutine as an
//! explicitly resumable state machine ([`Coroutine::resume`]): the driver
//! spawns a task that performs one resume step; every [`CoStep::Yield`]
//! reschedules the coroutine as a *new* task. This preserves the property
//! that matters for the study — each suspension is a full scheduler round
//! trip whose cost the machine model charges as a context switch.

use crate::future::{pair, Future};
use crate::Handle;

/// Result of one resume step.
pub enum CoStep<T> {
    /// The coroutine suspended; resume it again later.
    Yield,
    /// The coroutine finished with a value.
    Done(T),
}

/// A resumable computation (a hand-written C++20 coroutine frame).
pub trait Coroutine: Send + 'static {
    /// Final result type.
    type Output: Send + 'static;
    /// Run until the next suspension point or completion.
    fn resume(&mut self) -> CoStep<Self::Output>;
}

/// Adapt a closure `FnMut() -> CoStep<T>` into a [`Coroutine`].
pub struct FnCoroutine<F>(pub F);

impl<F, T> Coroutine for FnCoroutine<F>
where
    F: FnMut() -> CoStep<T> + Send + 'static,
    T: Send + 'static,
{
    type Output = T;
    fn resume(&mut self) -> CoStep<T> {
        (self.0)()
    }
}

/// Drive `coro` on `handle`'s runtime, returning the future of its result.
/// Each suspension is one scheduler round trip (a fresh task).
pub fn spawn_coroutine<C: Coroutine>(handle: &Handle, coro: C) -> Future<C::Output> {
    let (promise, future) = pair();
    step(handle.clone(), coro, promise);
    future
}

fn step<C: Coroutine>(handle: Handle, mut coro: C, promise: crate::Promise<C::Output>) {
    let h = handle.clone();
    handle.spawn_detached(move || {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| coro.resume())) {
            Ok(CoStep::Done(v)) => promise.set_value(v),
            Ok(CoStep::Yield) => step(h, coro, promise),
            Err(e) => promise.set_panic(e),
        }
    });
}

/// A coroutine that folds an index range in slices of `stride`, suspending
/// between slices — the exact shape of the Maclaurin coroutine benchmark
/// (sum a block of series terms, `co_await` the scheduler, continue).
pub struct ChunkedFold<R, F> {
    next: usize,
    end: usize,
    stride: usize,
    acc: R,
    f: F,
}

impl<R, F> ChunkedFold<R, F>
where
    R: Send + 'static,
    F: FnMut(R, usize) -> R + Send + 'static,
{
    /// Fold `f` over `range`, yielding every `stride` indices.
    pub fn new(range: std::ops::Range<usize>, stride: usize, init: R, f: F) -> Self {
        assert!(stride > 0, "stride must be positive");
        ChunkedFold {
            next: range.start,
            end: range.end,
            stride,
            acc: init,
            f,
        }
    }
}

impl<R, F> Coroutine for ChunkedFold<R, F>
where
    R: Send + Default + 'static,
    F: FnMut(R, usize) -> R + Send + 'static,
{
    type Output = R;
    fn resume(&mut self) -> CoStep<R> {
        let stop = (self.next + self.stride).min(self.end);
        let mut acc = std::mem::take(&mut self.acc);
        while self.next < stop {
            acc = (self.f)(acc, self.next);
            self.next += 1;
        }
        self.acc = acc;
        if self.next >= self.end {
            CoStep::Done(std::mem::take(&mut self.acc))
        } else {
            CoStep::Yield
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{when_all, Runtime};

    #[test]
    fn fn_coroutine_counts_down() {
        let rt = Runtime::new(2);
        let mut remaining = 5;
        let f = spawn_coroutine(
            &rt.handle(),
            FnCoroutine(move || {
                if remaining == 0 {
                    CoStep::Done("finished")
                } else {
                    remaining -= 1;
                    CoStep::Yield
                }
            }),
        );
        assert_eq!(f.get(), "finished");
    }

    #[test]
    fn each_yield_is_a_task() {
        let rt = Runtime::new(1);
        rt.reset_stats();
        let mut remaining = 10;
        spawn_coroutine(
            &rt.handle(),
            FnCoroutine(move || {
                if remaining == 0 {
                    CoStep::Done(())
                } else {
                    remaining -= 1;
                    CoStep::Yield
                }
            }),
        )
        .get();
        // 10 yields + 1 completion = 11 resume tasks.
        assert!(rt.stats().tasks_spawned >= 11);
    }

    #[test]
    fn chunked_fold_sums_range() {
        let rt = Runtime::new(2);
        let co = ChunkedFold::new(0..1000, 64, 0u64, |acc, i| acc + i as u64);
        assert_eq!(spawn_coroutine(&rt.handle(), co).get(), 999 * 1000 / 2);
    }

    #[test]
    fn chunked_fold_single_slice() {
        let rt = Runtime::new(1);
        let co = ChunkedFold::new(0..10, 100, 0u64, |acc, i| acc + i as u64);
        assert_eq!(spawn_coroutine(&rt.handle(), co).get(), 45);
    }

    #[test]
    fn chunked_fold_empty_range() {
        let rt = Runtime::new(1);
        let co = ChunkedFold::new(5..5, 4, 7u64, |acc, _| acc);
        assert_eq!(spawn_coroutine(&rt.handle(), co).get(), 7);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = ChunkedFold::new(0..10, 0, 0u64, |acc, _| acc);
    }

    #[test]
    fn many_concurrent_coroutines() {
        let rt = Runtime::new(4);
        let futures: Vec<_> = (0..32)
            .map(|c| {
                let co = ChunkedFold::new(0..100, 10, 0u64, move |acc, i| acc + (i + c) as u64);
                spawn_coroutine(&rt.handle(), co)
            })
            .collect();
        let sums = when_all(futures).get();
        for (c, s) in sums.into_iter().enumerate() {
            assert_eq!(s, (0..100u64).map(|i| i + c as u64).sum::<u64>());
        }
    }

    #[test]
    fn coroutine_panic_propagates() {
        let rt = Runtime::new(1);
        let f = spawn_coroutine(
            &rt.handle(),
            FnCoroutine(|| -> CoStep<()> { panic!("coro boom") }),
        );
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get())).is_err());
    }
}
