//! Parallel algorithms with execution policies — HPX's implementation of the
//! C++17/20 parallel algorithms (`hpx::for_each(hpx::execution::par, …)`),
//! which is what the paper's Fig. 4b benchmark measures.
//!
//! Algorithms chunk their index range into `chunks_per_thread × threads`
//! tasks (HPX's default static chunker has the same shape) and run them
//! under a [`scope`], so closures may borrow from the caller's stack. The
//! `par_unseq` policy additionally asserts the body is vectorizable; on this
//! CPU-only substrate it executes like `par` but is tagged for the machine
//! model, mirroring the paper's observation that the RISC-V boards have no
//! vector unit for `par_unseq` to use.

use std::any::Any;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::runtime::{help_one, on_worker};
use crate::Handle;

/// Execution policy selector, mirroring `hpx::execution`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionPolicy {
    /// Sequential on the calling thread — `hpx::execution::seq`.
    Seq,
    /// Parallel tasks — `hpx::execution::par`.
    Par,
    /// Parallel + vectorizable — `hpx::execution::par_unseq` (needs C++20 in
    /// HPX; the paper defers its RISC-V evaluation because the boards have
    /// no V extension — we run it like `Par` and let the machine model apply
    /// the vector width, which is 1 on RISC-V).
    ParUnseq,
}

impl ExecutionPolicy {
    /// Whether this policy may execute on multiple tasks.
    pub fn is_parallel(self) -> bool {
        !matches!(self, ExecutionPolicy::Seq)
    }

    /// Whether this policy permits vectorization (used by the projection
    /// model, not by execution).
    pub fn is_vectorized(self) -> bool {
        matches!(self, ExecutionPolicy::ParUnseq)
    }
}

/// Default number of chunks for `len` items on `threads` workers: four waves
/// per worker, never more chunks than items.
pub fn default_chunks(threads: usize, len: usize) -> usize {
    (threads * 4).clamp(1, len.max(1))
}

struct ScopeSync {
    pending: AtomicUsize,
    lock: Mutex<()>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A structured-concurrency scope: tasks spawned on it may borrow anything
/// that outlives the `scope` call, because `scope` does not return until all
/// of them finished (helping the scheduler while it waits).
pub struct Scope<'env> {
    handle: Handle,
    sync: Arc<ScopeSync>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// Erase the `'env` lifetime of a scoped-task closure so it can ride the
/// runtime's `'static` spawn queue.
///
/// # Safety
///
/// The caller must ensure the returned closure runs (or is dropped) before
/// `'env` ends, i.e. before anything it borrows is invalidated. In this
/// module that contract is upheld by [`scope`]: every erased closure is
/// wrapped so it decrements `ScopeSync::pending` exactly once — on the
/// normal and on the unwinding path — and `scope` does not return, even when
/// a task panicked, until `pending` is back to zero.
unsafe fn erase_scope_lifetime<'env>(
    f: Box<dyn FnOnce() + Send + 'env>,
) -> Box<dyn FnOnce() + Send + 'static> {
    std::mem::transmute(f)
}

impl<'env> Scope<'env> {
    /// Spawn a borrowing task on the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.sync.pending.fetch_add(1, Ordering::SeqCst);
        let sync = Arc::clone(&self.sync);
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the task below decrements `pending` on every exit path and
        // `scope()` blocks until `pending` returns to zero, so the closure
        // (and everything it borrows from 'env) outlives the task.
        let boxed = unsafe { erase_scope_lifetime(boxed) };
        self.handle.spawn_detached(move || {
            if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(boxed)) {
                let mut p = sync.panic.lock();
                if p.is_none() {
                    *p = Some(e);
                }
            }
            if sync.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _g = sync.lock.lock();
                sync.done.notify_all();
            }
        });
    }

    /// Handle of the underlying runtime.
    pub fn handle(&self) -> &Handle {
        &self.handle
    }
}

/// Run `f` with a [`Scope`]; returns after every scoped task completed.
/// The first panic from any scoped task is re-raised here.
pub fn scope<'env, F, R>(handle: &Handle, f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let sync = Arc::new(ScopeSync {
        pending: AtomicUsize::new(0),
        lock: Mutex::new(()),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let sc = Scope {
        handle: handle.clone(),
        sync: Arc::clone(&sync),
        _env: PhantomData,
    };
    let result = f(&sc);
    // Wait for quiescence, helping if we are a worker. Never busy-spin:
    // when there is nothing to help with, nap on the scope's condvar (a
    // spinning waiter would starve the workers on oversubscribed hosts).
    while sync.pending.load(Ordering::SeqCst) != 0 {
        if on_worker() && help_one() {
            continue;
        }
        let mut g = sync.lock.lock();
        if sync.pending.load(Ordering::SeqCst) != 0 {
            sync.done.wait_for(&mut g, Duration::from_micros(200));
        }
    }
    if let Some(e) = sync.panic.lock().take() {
        std::panic::resume_unwind(e);
    }
    result
}

/// Split `range` into at most `chunks` contiguous sub-ranges.
pub fn split_range(range: Range<usize>, chunks: usize) -> Vec<Range<usize>> {
    let len = range.len();
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = range.start;
    for i in 0..chunks {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, range.end);
    out
}

/// Index-space parallel loop — `hpx::experimental::for_loop`.
pub fn for_loop<F>(handle: &Handle, policy: ExecutionPolicy, range: Range<usize>, f: F)
where
    F: Fn(usize) + Send + Sync,
{
    for_loop_chunked(
        handle,
        policy,
        range.clone(),
        default_chunks(handle.num_threads(), range.len()),
        f,
    );
}

/// [`for_loop`] with an explicit chunk count — the knob the paper's §3.2
/// highlights: the Kokkos-HPX execution space lets the user steer how many
/// tasks a kernel is divided into.
pub fn for_loop_chunked<F>(
    handle: &Handle,
    policy: ExecutionPolicy,
    range: Range<usize>,
    chunks: usize,
    f: F,
) where
    F: Fn(usize) + Send + Sync,
{
    if range.is_empty() {
        return;
    }
    if !policy.is_parallel() || handle.num_threads() == 1 && chunks <= 1 {
        for i in range {
            f(i);
        }
        return;
    }
    let f = &f;
    scope(handle, |sc| {
        for sub in split_range(range, chunks) {
            sc.spawn(move || {
                for i in sub {
                    f(i);
                }
            });
        }
    });
}

/// Parallel `for_each` over a shared slice — `hpx::for_each`.
pub fn for_each<T, F>(handle: &Handle, policy: ExecutionPolicy, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Send + Sync,
{
    let f = &f;
    for_loop(handle, policy, 0..items.len(), move |i| f(&items[i]));
}

/// Parallel mutation of a slice (disjoint chunks) — `hpx::for_each` on a
/// mutable range.
pub fn for_each_mut<T, F>(handle: &Handle, policy: ExecutionPolicy, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Send + Sync,
{
    if items.is_empty() {
        return;
    }
    if !policy.is_parallel() {
        for it in items.iter_mut() {
            f(it);
        }
        return;
    }
    let chunks = default_chunks(handle.num_threads(), items.len());
    let chunk_size = items.len().div_ceil(chunks);
    let f = &f;
    scope(handle, |sc| {
        for chunk in items.chunks_mut(chunk_size) {
            sc.spawn(move || {
                for it in chunk {
                    f(it);
                }
            });
        }
    });
}

/// Map-reduce over an index space — `hpx::transform_reduce`. The reduction
/// operator must be associative; partial results are combined in chunk order
/// so the result is deterministic for a fixed chunk count.
pub fn transform_reduce<R, M, B>(
    handle: &Handle,
    policy: ExecutionPolicy,
    range: Range<usize>,
    identity: R,
    map: M,
    reduce: B,
) -> R
where
    R: Send + Clone,
    M: Fn(usize) -> R + Send + Sync,
    B: Fn(R, R) -> R + Send + Sync,
{
    transform_reduce_chunked(
        handle,
        policy,
        range.clone(),
        default_chunks(handle.num_threads(), range.len()),
        identity,
        map,
        reduce,
    )
}

/// [`transform_reduce`] with an explicit chunk count.
pub fn transform_reduce_chunked<R, M, B>(
    handle: &Handle,
    policy: ExecutionPolicy,
    range: Range<usize>,
    chunks: usize,
    identity: R,
    map: M,
    reduce: B,
) -> R
where
    R: Send + Clone,
    M: Fn(usize) -> R + Send + Sync,
    B: Fn(R, R) -> R + Send + Sync,
{
    if range.is_empty() {
        return identity;
    }
    if !policy.is_parallel() {
        let mut acc = identity;
        for i in range {
            acc = reduce(acc, map(i));
        }
        return acc;
    }
    let subranges = split_range(range, chunks);
    let mut partials: Vec<Option<R>> = vec![None; subranges.len()];
    {
        let map = &map;
        let reduce = &reduce;
        let ids: Vec<R> = vec![identity.clone(); subranges.len()];
        scope(handle, |sc| {
            for ((slot, sub), id) in partials.iter_mut().zip(subranges).zip(ids) {
                sc.spawn(move || {
                    let mut acc = id;
                    for i in sub {
                        acc = reduce(acc, map(i));
                    }
                    *slot = Some(acc);
                });
            }
        });
    }
    let mut acc = identity;
    for p in partials {
        acc = reduce(acc, p.expect("scope guarantees completion"));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_range_covers_exactly() {
        let parts = split_range(3..103, 7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.first().unwrap().start, 3);
        assert_eq!(parts.last().unwrap().end, 103);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        for w in parts.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn split_range_more_chunks_than_items() {
        let parts = split_range(0..3, 10);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn split_empty_range() {
        assert!(split_range(5..5, 4).is_empty());
    }

    #[test]
    fn for_loop_visits_every_index_once() {
        let rt = Runtime::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        for_loop(&rt.handle(), ExecutionPolicy::Par, 0..1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_loop_seq_matches_par() {
        let rt = Runtime::new(4);
        let seq = AtomicU64::new(0);
        let par = AtomicU64::new(0);
        for_loop(&rt.handle(), ExecutionPolicy::Seq, 0..100, |i| {
            seq.fetch_add(i as u64, Ordering::Relaxed);
        });
        for_loop(&rt.handle(), ExecutionPolicy::Par, 0..100, |i| {
            par.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(seq.load(Ordering::Relaxed), par.load(Ordering::Relaxed));
    }

    #[test]
    fn for_each_borrows_stack_data() {
        let rt = Runtime::new(3);
        let data: Vec<u64> = (0..500).collect();
        let sum = AtomicU64::new(0);
        for_each(&rt.handle(), ExecutionPolicy::Par, &data, |&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 499 * 500 / 2);
    }

    #[test]
    fn for_each_mut_updates_in_place() {
        let rt = Runtime::new(4);
        let mut data: Vec<u64> = (0..333).collect();
        for_each_mut(&rt.handle(), ExecutionPolicy::Par, &mut data, |x| *x *= 2);
        assert!(data.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn for_each_mut_seq_policy() {
        let rt = Runtime::new(2);
        let mut data = vec![1u64; 10];
        for_each_mut(&rt.handle(), ExecutionPolicy::Seq, &mut data, |x| *x += 1);
        assert_eq!(data, vec![2u64; 10]);
    }

    #[test]
    fn transform_reduce_sums() {
        let rt = Runtime::new(4);
        let s = transform_reduce(
            &rt.handle(),
            ExecutionPolicy::Par,
            0..10_001,
            0u64,
            |i| i as u64,
            |a, b| a + b,
        );
        assert_eq!(s, 10_000 * 10_001 / 2);
    }

    #[test]
    fn transform_reduce_deterministic_float_order() {
        // Fixed chunk count ⇒ bitwise-identical result run to run.
        let rt = Runtime::new(4);
        let run = || {
            transform_reduce_chunked(
                &rt.handle(),
                ExecutionPolicy::Par,
                1..100_000,
                16,
                0.0f64,
                |i| 1.0 / i as f64,
                |a, b| a + b,
            )
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn transform_reduce_empty_range_gives_identity() {
        let rt = Runtime::new(2);
        let s = transform_reduce(
            &rt.handle(),
            ExecutionPolicy::Par,
            10..10,
            42i64,
            |i| i as i64,
            |a, b| a + b,
        );
        assert_eq!(s, 42);
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let rt = Runtime::new(4);
        let counter = AtomicU64::new(0);
        scope(&rt.handle(), |sc| {
            for _ in 0..64 {
                sc.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_propagates_panic() {
        let rt = Runtime::new(2);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(&rt.handle(), |sc| {
                sc.spawn(|| panic!("scoped boom"));
            });
        }));
        assert!(res.is_err());
        // Runtime still usable.
        assert_eq!(rt.spawn(|| 1).get(), 1);
    }

    #[test]
    fn scope_panic_path_keeps_borrows_alive() {
        // The unsafe lifetime erasure in `erase_scope_lifetime` is only
        // sound if `scope` refuses to unwind before every task finished —
        // including when one of them panics. Borrow stack data from tasks
        // that race a panicking sibling and check all of them completed
        // against the still-live borrow before the panic resurfaced.
        let rt = Runtime::new(4);
        let data: Vec<u64> = (0..256).collect();
        let touched = AtomicU64::new(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(&rt.handle(), |sc| {
                for chunk in data.chunks(16) {
                    let touched = &touched;
                    sc.spawn(move || {
                        touched.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                    });
                }
                sc.spawn(|| panic!("die mid-scope"));
            });
        }));
        assert!(res.is_err(), "the scoped panic must resurface");
        // Quiescence before unwind: every borrowing task ran to completion
        // while `data` was still alive.
        assert_eq!(touched.load(Ordering::Relaxed), (0..256u64).sum::<u64>());
        drop(data);
        // Runtime still usable afterwards.
        assert_eq!(rt.spawn(|| 7).get(), 7);
    }

    #[test]
    fn nested_scopes_from_worker() {
        let rt = Runtime::new(2);
        let h = rt.handle();
        let total = rt
            .spawn(move || {
                let counter = AtomicU64::new(0);
                scope(&h, |outer| {
                    for _ in 0..4 {
                        let h2 = outer.handle().clone();
                        let c = &counter;
                        outer.spawn(move || {
                            scope(&h2, |inner| {
                                for _ in 0..8 {
                                    inner.spawn(|| {
                                        c.fetch_add(1, Ordering::Relaxed);
                                    });
                                }
                            });
                        });
                    }
                });
                counter.load(Ordering::Relaxed)
            })
            .get();
        assert_eq!(total, 32);
    }

    #[test]
    fn policy_predicates() {
        assert!(!ExecutionPolicy::Seq.is_parallel());
        assert!(ExecutionPolicy::Par.is_parallel());
        assert!(ExecutionPolicy::ParUnseq.is_vectorized());
        assert!(!ExecutionPolicy::Par.is_vectorized());
    }

    #[test]
    fn default_chunks_bounds() {
        assert_eq!(default_chunks(4, 0), 1);
        assert_eq!(default_chunks(4, 3), 3);
        assert_eq!(default_chunks(4, 1000), 16);
    }
}
