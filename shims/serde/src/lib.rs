//! Minimal in-tree stand-in for the `serde` data model.
//!
//! The build environment has no network access and no registry cache, so
//! the real serde cannot be fetched. This crate reimplements the subset
//! of serde's (stable, documented) data model that the workspace's wire
//! format and derived types exercise: the `Serialize`/`Deserialize`
//! traits, the 29-method `Serializer`/`Deserializer` driver traits, the
//! visitor machinery, and impls for the std types the repo serializes.
//!
//! Deliberately out of scope (the wire format rejects them anyway):
//! `deserialize_any` self-description, 128-bit integers, and borrowed
//! zero-copy deserialization beyond what `visit_borrowed_*` forwards.

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the same-named macro namespace, exactly like
// `serde` with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
