//! Serialization half of the data model: `Serialize`, `Serializer`, and
//! the seven compound-serialization helper traits.

use std::fmt::Display;

/// Error type contract for serializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A value that can drive a [`Serializer`].
pub trait Serialize {
    fn serialize<S>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        S: Serializer;
}

/// A data format that can receive any value in the data model.
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T>(self, value: &T) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    fn serialize_newtype_variant<T>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>
    where
        T: Serialize + ?Sized;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

pub trait SerializeSeq {
    type Ok;
    type Error: Error;
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTuple {
    type Ok;
    type Error: Error;
    fn serialize_element<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeTupleVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeMap {
    type Ok;
    type Error: Error;
    fn serialize_key<T>(&mut self, key: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn serialize_value<T>(&mut self, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStruct {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

pub trait SerializeStructVariant {
    type Ok;
    type Error: Error;
    fn serialize_field<T>(&mut self, key: &'static str, value: &T) -> Result<(), Self::Error>
    where
        T: Serialize + ?Sized;
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
