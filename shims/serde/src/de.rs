//! Deserialization half of the data model: `Deserialize`,
//! `Deserializer`, the `Visitor` machinery, and the access traits a
//! format hands to visitors.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error type contract for deserializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;
}

/// A type constructible from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stateful deserialization entry point; `PhantomData<T>` is the
/// stateless seed used by the `next_element`/`variant` conveniences.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T> DeserializeSeed<'de> for PhantomData<T>
where
    T: Deserialize<'de>,
{
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

macro_rules! visit_default {
    ($($name:ident: $ty:ty),* $(,)?) => {
        $(fn $name<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(E::custom(concat!("unexpected ", stringify!($name))))
        })*
    };
}

/// Receives whichever data-model value the deserializer finds. Every
/// method defaults to an error; implementations override what they
/// accept.
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result {
        formatter.write_str("a supported value")
    }

    visit_default! {
        visit_bool: bool,
        visit_i8: i8, visit_i16: i16, visit_i32: i32, visit_i64: i64,
        visit_u8: u8, visit_u16: u16, visit_u32: u32, visit_u64: u64,
        visit_f32: f32, visit_f64: f64,
        visit_char: char,
    }

    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(E::custom("unexpected string"))
    }
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(E::custom("unexpected bytes"))
    }
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected none"))
    }
    fn visit_some<D>(self, _deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        Err(D::Error::custom("unexpected some"))
    }
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(E::custom("unexpected unit"))
    }
    fn visit_newtype_struct<D>(self, _deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>,
    {
        Err(D::Error::custom("unexpected newtype struct"))
    }
    fn visit_seq<A>(self, _seq: A) -> Result<Self::Value, A::Error>
    where
        A: SeqAccess<'de>,
    {
        Err(A::Error::custom("unexpected sequence"))
    }
    fn visit_map<A>(self, _map: A) -> Result<Self::Value, A::Error>
    where
        A: MapAccess<'de>,
    {
        Err(A::Error::custom("unexpected map"))
    }
    fn visit_enum<A>(self, _data: A) -> Result<Self::Value, A::Error>
    where
        A: EnumAccess<'de>,
    {
        Err(A::Error::custom("unexpected enum"))
    }
}

/// A data format that can produce values for the data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Element-by-element access to a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<S>(&mut self, seed: S) -> Result<Option<S::Value>, Self::Error>
    where
        S: DeserializeSeed<'de>;

    fn next_element<T>(&mut self) -> Result<Option<T>, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Entry-by-entry access to a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<S>(&mut self, seed: S) -> Result<Option<S::Value>, Self::Error>
    where
        S: DeserializeSeed<'de>;
    fn next_value_seed<S>(&mut self, seed: S) -> Result<S::Value, Self::Error>
    where
        S: DeserializeSeed<'de>;

    fn next_key<K>(&mut self) -> Result<Option<K>, Self::Error>
    where
        K: Deserialize<'de>,
    {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V>(&mut self) -> Result<V, Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K, V>(&mut self) -> Result<Option<(K, V)>, Self::Error>
    where
        K: Deserialize<'de>,
        V: Deserialize<'de>,
    {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum, then its content.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<S>(self, seed: S) -> Result<(S::Value, Self::Variant), Self::Error>
    where
        S: DeserializeSeed<'de>;

    fn variant<V>(self) -> Result<(V, Self::Variant), Self::Error>
    where
        V: Deserialize<'de>,
    {
        self.variant_seed(PhantomData)
    }
}

/// Access to the content of one enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;
    fn newtype_variant_seed<S>(self, seed: S) -> Result<S::Value, Self::Error>
    where
        S: DeserializeSeed<'de>;
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn newtype_variant<T>(self) -> Result<T, Self::Error>
    where
        T: Deserialize<'de>,
    {
        self.newtype_variant_seed(PhantomData)
    }
}

/// Conversion of a plain value into a deserializer over that value,
/// used for enum variant indices.
pub trait IntoDeserializer<'de, E: Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer wrapping a single `u32` (an enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_to_visit_u32 {
    ($($name:ident),* $(,)?) => {
        $(fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        })*
    };
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_visit_u32! {
        deserialize_any, deserialize_bool,
        deserialize_i8, deserialize_i16, deserialize_i32, deserialize_i64,
        deserialize_u8, deserialize_u16, deserialize_u32, deserialize_u64,
        deserialize_f32, deserialize_f64, deserialize_char,
        deserialize_str, deserialize_string, deserialize_bytes,
        deserialize_byte_buf, deserialize_option, deserialize_unit,
        deserialize_seq, deserialize_map, deserialize_identifier,
        deserialize_ignored_any,
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}
