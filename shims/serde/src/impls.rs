//! `Serialize`/`Deserialize` implementations for the std types the
//! workspace actually puts on the wire.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::marker::PhantomData;

use crate::de::{
    Deserialize, Deserializer, EnumAccess, Error as DeError, MapAccess, SeqAccess, VariantAccess,
    Visitor,
};
use crate::ser::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($($ty:ty => $ser:ident / $de:ident / $visit:ident),* $(,)?) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> Visitor<'de> for V {
                    type Value = $ty;
                    fn $visit<E: DeError>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$de(V)
            }
        }
    )*};
}

primitive! {
    bool => serialize_bool / deserialize_bool / visit_bool,
    i8 => serialize_i8 / deserialize_i8 / visit_i8,
    i16 => serialize_i16 / deserialize_i16 / visit_i16,
    i32 => serialize_i32 / deserialize_i32 / visit_i32,
    i64 => serialize_i64 / deserialize_i64 / visit_i64,
    u8 => serialize_u8 / deserialize_u8 / visit_u8,
    u16 => serialize_u16 / deserialize_u16 / visit_u16,
    u32 => serialize_u32 / deserialize_u32 / visit_u32,
    u64 => serialize_u64 / deserialize_u64 / visit_u64,
    f32 => serialize_f32 / deserialize_f32 / visit_f32,
    f64 => serialize_f64 / deserialize_f64 / visit_f64,
    char => serialize_char / deserialize_char / visit_char,
}

// usize/isize travel as 64-bit, as in the real crate.
impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = usize;
            fn visit_u64<E: DeError>(self, v: u64) -> Result<usize, E> {
                usize::try_from(v).map_err(|_| E::custom("usize overflow"))
            }
        }
        deserializer.deserialize_u64(V)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = isize;
            fn visit_i64<E: DeError>(self, v: i64) -> Result<isize, E> {
                isize::try_from(v).map_err(|_| E::custom("isize overflow"))
            }
        }
        deserializer.deserialize_i64(V)
    }
}

// ---------------------------------------------------------------------------
// Strings
// ---------------------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

/// Deserializing into `&'static str` leaks the string. The workspace
/// only derives `Deserialize` on one config struct holding static
/// architecture names, and never actually decodes it from the wire;
/// this impl exists so that derive compiles. The leak is the documented
/// price if anyone ever does decode one.
impl<'de> Deserialize<'de> for &'static str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = &'static str;
            fn visit_str<E: DeError>(self, v: &str) -> Result<&'static str, E> {
                Ok(Box::leak(v.to_owned().into_boxed_str()))
            }
        }
        deserializer.deserialize_str(V)
    }
}

// ---------------------------------------------------------------------------
// Unit, Option, Result, references, Box
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn visit_none<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for V<T, E> {
            type Value = Result<T, E>;
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant): (u32, _) = data.variant()?;
                match idx {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    n => Err(A::Error::custom(format!("invalid Result variant {n}"))),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

// Arrays travel as fixed-size tuples (no length prefix), like real serde.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tup = serializer.serialize_tuple(N)?;
        for item in self {
            tup.serialize_element(item)?;
        }
        tup.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(A::Error::custom(format!("missing array element {i}"))),
                    }
                }
                out.try_into()
                    .map_err(|_| A::Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V(PhantomData))
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impls {
    ($($len:expr => ($($n:tt $name:ident)+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for V<$($name),+> {
                    type Value = ($($name,)+);
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        Ok(($(
                            match seq.next_element::<$name>()? {
                                Some(v) => v,
                                None => return Err(A::Error::custom(
                                    concat!("missing tuple element ", stringify!($n)),
                                )),
                            },
                        )+))
                    }
                }
                deserializer.deserialize_tuple($len, V(PhantomData))
            }
        }
    )+};
}

tuple_impls! {
    1 => (0 T0)
    2 => (0 T0 1 T1)
    3 => (0 T0 1 T1 2 T2)
    4 => (0 T0 1 T1 2 T2 3 T3)
    5 => (0 T0 1 T1 2 T2 3 T3 4 T4)
    6 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5)
    7 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6)
    8 => (0 T0 1 T1 2 T2 3 T3 4 T4 5 T5 6 T6 7 T7)
}

// ---------------------------------------------------------------------------
// Maps
// ---------------------------------------------------------------------------

macro_rules! map_serialize {
    () => {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut map = serializer.serialize_map(Some(self.len()))?;
            for (k, v) in self {
                map.serialize_key(k)?;
                map.serialize_value(v)?;
            }
            map.end()
        }
    };
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    map_serialize!();
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    map_serialize!();
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Ord,
            V: Deserialize<'de>,
        {
            type Value = BTreeMap<K, V>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Hash + Eq,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Hash + Eq,
            V: Deserialize<'de>,
        {
            type Value = HashMap<K, V>;
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_capacity(map.size_hint().unwrap_or(0).min(4096));
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}
