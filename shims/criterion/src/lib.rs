//! Minimal in-tree stand-in for `criterion` (offline build — the real
//! crate cannot be fetched without network access).
//!
//! Runs each benchmark for `sample_size` timed iterations after one
//! warm-up and prints mean/min wall time per iteration. No statistics
//! engine, no HTML reports — just enough to keep `cargo bench` useful
//! for relative comparisons (the ablations print their own counters).

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }

    /// Accepted for `criterion_group!` compatibility; no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples (b.iter never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{group}/{id}: mean {} min {} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> FmtDuration {
    FmtDuration(d)
}

pub struct FmtDuration(Duration);

impl fmt::Display for FmtDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 10_000 {
            write!(f, "{ns} ns")
        } else if ns < 10_000_000 {
            write!(f, "{:.2} µs", ns as f64 / 1e3)
        } else if ns < 10_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2} s", ns as f64 / 1e9)
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(7);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warm-up + 7 samples.
        assert_eq!(runs, 8);
    }
}
