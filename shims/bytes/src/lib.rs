//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no cargo registry
//! cache, so external crates cannot be fetched. This shim implements
//! exactly the surface the workspace uses: `BytesMut` as a growable
//! write buffer, `Bytes` as a cheaply-clonable frozen buffer, and the
//! `Buf`/`BufMut` traits for little-endian primitive access.
//!
//! Semantics match the real crate for this subset, with one deliberate
//! simplification: `Bytes` is an `Arc<[u8]>` (no sub-slice views into a
//! shared allocation), which is all the workspace needs.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable, immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer; `freeze()` converts it into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

macro_rules! put_le {
    ($($name:ident: $ty:ty),* $(,)?) => {
        $(fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        })*
    };
}

/// Write access to a growable buffer (little-endian helpers only).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    put_le! {
        put_u16_le: u16, put_u32_le: u32, put_u64_le: u64,
        put_i16_le: i16, put_i32_le: i32, put_i64_le: i64,
        put_f32_le: f32, put_f64_le: f64,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($($name:ident: $ty:ty = $n:expr),* $(,)?) => {
        $(fn $name(&mut self) -> $ty {
            let mut buf = [0u8; $n];
            self.copy_to_slice(&mut buf);
            <$ty>::from_le_bytes(buf)
        })*
    };
}

/// Read access to a byte cursor (little-endian helpers only).
///
/// Like the real crate, the `get_*` methods panic when fewer than the
/// required bytes remain; callers bound-check first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_le! {
        get_u16_le: u16 = 2, get_u32_le: u32 = 4, get_u64_le: u64 = 8,
        get_i16_le: i16 = 2, get_i32_le: i32 = 4, get_i64_le: i64 = 8,
        get_f32_le: f32 = 4, get_f64_le: f64 = 8,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf::copy_to_slice out of bounds");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_primitives() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f64_le(-1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_f64_le(), -1.5);
        assert_eq!(cur, b"xyz");
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(&*b as *const [u8], &*c as *const [u8]);
    }
}
