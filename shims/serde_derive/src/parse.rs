//! Hand-rolled parser over `proc_macro::TokenStream` for the shapes the
//! derive supports. It collects only *names* — field names, variant
//! names, tuple arities — and skips type tokens with an
//! angle-bracket-depth-aware scan, since the generated code never needs
//! to name a type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

pub struct Input {
    pub name: String,
    pub data: Data,
}

pub enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported; \
             add a manual impl or drop the generics"
        ));
    }

    let data = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            None | Some(TokenTree::Punct(_)) => Data::Struct(Fields::Unit),
            other => return Err(format!("unexpected token after struct name: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    };

    Ok(Input { name, data })
}

/// Advance past `#[...]` attributes (incl. doc comments) and `pub` /
/// `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(*i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    *i += 2;
                }
                other => return Err(format!("expected attribute body, found {other:?}")),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return Ok(()),
        }
    }
}

/// `a: Vec<f64>, b: u32` → `["a", "b"]`. Type tokens are skipped up to
/// the next comma at angle-bracket depth zero; `->` inside a type (fn
/// pointers) is guarded so its `>` doesn't unbalance the depth count.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();

    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        names.push(name);
    }
    Ok(names)
}

/// Skip tokens until a comma at angle depth 0 (consuming the comma).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    let mut prev_char = ' ';
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                '<' => depth += 1,
                // `->` return arrows don't close a generic bracket.
                '>' if prev_char != '-' => depth -= 1,
                _ => {}
            }
            prev_char = p.as_char();
        } else {
            prev_char = ' ';
        }
        *i += 1;
    }
}

/// Count top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut depth: i32 = 0;
    let mut prev_char = ' ';
    let mut fields = 0;
    let mut has_content = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if depth == 0 => {
                    if has_content {
                        fields += 1;
                        has_content = false;
                    }
                    prev_char = ' ';
                    continue;
                }
                '<' => depth += 1,
                '>' if prev_char != '-' => depth -= 1,
                _ => {}
            }
            prev_char = p.as_char();
        } else {
            prev_char = ' ';
        }
        has_content = true;
    }
    if has_content {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();

    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;

        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };

        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde_derive shim: explicit discriminant on variant `{name}` \
                     is not supported"
                ));
            }
            None => {}
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        }

        variants.push(Variant { name, fields });
    }
    Ok(variants)
}
