//! Minimal in-tree stand-in for `serde_derive` — written against bare
//! `proc_macro` because the offline build environment cannot fetch
//! `syn`/`quote`.
//!
//! Scope: non-generic named structs, tuple structs, unit structs, and
//! enums whose variants are unit, tuple, or struct-like. That is the
//! entire shape vocabulary this workspace derives on. Generic types are
//! rejected with a compile error rather than silently miscompiled.
//!
//! The trick that makes a syn-free derive practical: the generated code
//! never needs to *name* field types. `Ok(Ghost { face, level, data })`
//! pins each `next_element::<_>()` call's type through the constructor,
//! so parsing can skip type tokens entirely and only collect field and
//! variant names.

use proc_macro::TokenStream;

mod parse;

use parse::{Fields, Input, Variant};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    let parsed = match parse::parse(input) {
        Ok(p) => p,
        Err(msg) => return compile_error(&msg),
    };
    let src = gen(&parsed);
    src.parse().unwrap_or_else(|e| {
        compile_error(&format!("serde_derive shim generated invalid code: {e}"))
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        parse::Data::Struct(fields) => serialize_struct_body(name, fields),
        parse::Data::Enum(variants) => serialize_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Fields::Tuple(1) => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let mut __state = ::serde::Serializer::serialize_tuple_struct(\
                 __serializer, \"{name}\", {n})?;\n"
            );
            for i in 0..*n {
                s += &format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;\n"
                );
            }
            s += "::serde::ser::SerializeTupleStruct::end(__state)";
            s
        }
        Fields::Named(names) => {
            let n = names.len();
            let mut s = format!(
                "let mut __state = ::serde::Serializer::serialize_struct(\
                 __serializer, \"{name}\", {n})?;\n"
            );
            for f in names {
                s += &format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", &self.{f})?;\n"
                );
            }
            s += "::serde::ser::SerializeStruct::end(__state)";
            s
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm = match &v.fields {
            Fields::Unit => format!(
                "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                 __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
            ),
            Fields::Tuple(1) => format!(
                "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                 __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let mut body = format!(
                    "let mut __state = ::serde::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                );
                for b in &binds {
                    body += &format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;\n"
                    );
                }
                body += "::serde::ser::SerializeTupleVariant::end(__state)";
                format!("{name}::{vname}({}) => {{\n{body}\n}}\n", binds.join(", "))
            }
            Fields::Named(fields) => {
                let n = fields.len();
                let mut body = format!(
                    "let mut __state = ::serde::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\", {n})?;\n"
                );
                for f in fields {
                    body += &format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \"{f}\", {f})?;\n"
                    );
                }
                body += "::serde::ser::SerializeStructVariant::end(__state)";
                format!(
                    "{name}::{vname} {{ {} }} => {{\n{body}\n}}\n",
                    fields.join(", ")
                )
            }
        };
        arms += &arm;
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// `let __f = next_element()? else missing-field error;` — the caller's
/// constructor expression pins `__f`'s type by inference.
fn seq_field(bind: &str, label: &str) -> String {
    format!(
        "let {bind} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
         ::core::option::Option::Some(__v) => __v,\n\
         ::core::option::Option::None => return ::core::result::Result::Err(\
         ::serde::de::Error::custom(\"missing field `{label}`\")),\n}};\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        parse::Data::Struct(fields) => deserialize_struct_body(name, fields),
        parse::Data::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

/// A visitor impl whose `visit_seq` reads `fields` elements and builds
/// `ctor` (any constructor expression over the bound names).
fn seq_visitor(value_ty: &str, binds_and_labels: &[(String, String)], ctor: &str) -> String {
    let mut body = String::new();
    for (bind, label) in binds_and_labels {
        body += &seq_field(bind, label);
    }
    format!(
        "struct __SeqVisitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __SeqVisitor {{\n\
         type Value = {value_ty};\n\
         fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
         {body}::core::result::Result::Ok({ctor})\n}}\n}}\n"
    )
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "struct __UnitVisitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __UnitVisitor {{\n\
             type Value = {name};\n\
             fn visit_unit<__E: ::serde::de::Error>(self)\n\
             -> ::core::result::Result<Self::Value, __E> {{\n\
             ::core::result::Result::Ok({name})\n}}\n}}\n\
             ::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __UnitVisitor)"
        ),
        Fields::Tuple(1) => format!(
            "struct __NewtypeVisitor;\n\
             impl<'de> ::serde::de::Visitor<'de> for __NewtypeVisitor {{\n\
             type Value = {name};\n\
             fn visit_newtype_struct<__D2: ::serde::Deserializer<'de>>(self, __d: __D2)\n\
             -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
             ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))\n\
             }}\n}}\n\
             ::serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __NewtypeVisitor)"
        ),
        Fields::Tuple(n) => {
            let binds: Vec<(String, String)> =
                (0..*n).map(|i| (format!("__f{i}"), i.to_string())).collect();
            let ctor = format!(
                "{name}({})",
                binds.iter().map(|(b, _)| b.as_str()).collect::<Vec<_>>().join(", ")
            );
            let visitor = seq_visitor(name, &binds, &ctor);
            format!(
                "{visitor}\
                 ::serde::Deserializer::deserialize_tuple_struct(\
                 __deserializer, \"{name}\", {n}, __SeqVisitor)"
            )
        }
        Fields::Named(names) => {
            let binds: Vec<(String, String)> =
                names.iter().map(|f| (format!("__f_{f}"), f.clone())).collect();
            let ctor = format!(
                "{name} {{ {} }}",
                names
                    .iter()
                    .map(|f| format!("{f}: __f_{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let visitor = seq_visitor(name, &binds, &ctor);
            let field_list = names
                .iter()
                .map(|f| format!("\"{f}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{visitor}\
                 ::serde::Deserializer::deserialize_struct(\
                 __deserializer, \"{name}\", &[{field_list}], __SeqVisitor)"
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let arm = match &v.fields {
            Fields::Unit => format!(
                "{idx}u32 => {{\n\
                 ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                 ::core::result::Result::Ok({name}::{vname})\n}}\n"
            ),
            Fields::Tuple(1) => format!(
                "{idx}u32 => ::core::result::Result::map(\
                 ::serde::de::VariantAccess::newtype_variant(__variant), {name}::{vname}),\n"
            ),
            Fields::Tuple(n) => {
                let binds: Vec<(String, String)> = (0..*n)
                    .map(|i| (format!("__f{i}"), i.to_string()))
                    .collect();
                let ctor = format!(
                    "{name}::{vname}({})",
                    binds
                        .iter()
                        .map(|(b, _)| b.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let visitor = seq_visitor(name, &binds, &ctor);
                format!(
                    "{idx}u32 => {{\n{visitor}\
                     ::serde::de::VariantAccess::tuple_variant(__variant, {n}, __SeqVisitor)\n}}\n"
                )
            }
            Fields::Named(fields) => {
                let binds: Vec<(String, String)> = fields
                    .iter()
                    .map(|f| (format!("__f_{f}"), f.clone()))
                    .collect();
                let ctor = format!(
                    "{name}::{vname} {{ {} }}",
                    fields
                        .iter()
                        .map(|f| format!("{f}: __f_{f}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                let visitor = seq_visitor(name, &binds, &ctor);
                let field_list = fields
                    .iter()
                    .map(|f| format!("\"{f}\""))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{idx}u32 => {{\n{visitor}\
                     ::serde::de::VariantAccess::struct_variant(\
                     __variant, &[{field_list}], __SeqVisitor)\n}}\n"
                )
            }
        };
        arms += &arm;
    }
    let variant_list = variants
        .iter()
        .map(|v| format!("\"{}\"", v.name))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "struct __EnumVisitor;\n\
         impl<'de> ::serde::de::Visitor<'de> for __EnumVisitor {{\n\
         type Value = {name};\n\
         fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
         let (__idx, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
         match __idx {{\n{arms}\
         __n => ::core::result::Result::Err(::serde::de::Error::custom(\
         ::std::format!(\"invalid variant index {{}} for enum {name}\", __n))),\n\
         }}\n}}\n}}\n\
         ::serde::Deserializer::deserialize_enum(\
         __deserializer, \"{name}\", &[{variant_list}], __EnumVisitor)"
    )
}
