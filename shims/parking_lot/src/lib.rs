//! Minimal in-tree stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. This shim keeps parking_lot's API shape for the subset the
//! workspace uses — non-poisoning locks, `&mut guard` condvar waits, and
//! `const` constructors — while delegating the actual synchronization to
//! the standard library. Poison errors are swallowed (parking_lot has no
//! poisoning): a panic while holding a lock leaves the protected data in
//! whatever state it reached, exactly like the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar can temporarily take the std guard for a wait.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_lock_and_condvar_wait_for() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        *g += 1;
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(*g, 1);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poison, the lock stays usable.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
