//! Minimal in-tree stand-in for `crossbeam-channel`, backed by
//! `std::sync::mpsc`.
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched. The workspace only needs `unbounded()` with clonable
//! senders and a (clonable, `Sync`) receiver; `std::sync::mpsc::Sender`
//! has been `Sync` since Rust 1.72, and the receiver side gains
//! crossbeam's clone/share semantics via an internal mutex.

use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

pub struct Receiver<T> {
    inner: Arc<Mutex<mpsc::Receiver<T>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender { inner: tx },
        Receiver {
            inner: Arc::new(Mutex::new(rx)),
        },
    )
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner
            .send(value)
            .map_err(|mpsc::SendError(v)| SendError(v))
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.lock().recv().map_err(|_| RecvError)
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.lock().try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.lock().recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn receiver_is_shareable() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }
}
