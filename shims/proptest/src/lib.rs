//! Minimal in-tree stand-in for `proptest` (offline build — the real
//! crate cannot be fetched without network access).
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro with a `proptest_config` attribute, `any::<T>()`,
//! integer/float range strategies, `proptest::collection::vec`,
//! `proptest::option::of`, tuple strategies, `".{a,b}"`-style string
//! patterns, `Strategy::prop_map`, the `prop_oneof!` union macro, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate, on purpose: no shrinking (a failure
//! reports the failing case index and re-runs deterministically, since
//! the RNG seed is derived from the test name), and string "regexes"
//! only support the `.{lo,hi}` length form the tests use.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Config, error, RNG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property within one generated case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// SplitMix64: tiny, deterministic, and plenty random for generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Generates values of `Self::Value`; the shim's stand-in for
/// proptest's `Strategy`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values — proptest's `prop_map` (no shrinking
    /// to invert, so a plain closure suffices).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies — what the
/// [`prop_oneof!`] macro builds (the real crate's weighted union, with
/// every weight 1).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.next_below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Uniform union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::Union::new(__options)
    }};
}

/// Whole-domain generation for a type (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 toward boundary values, like the real
                // crate's edge-case weighting.
                if rng.next_below(8) == 0 {
                    match rng.next_below(3) {
                        0 => 0 as $ty,
                        1 => <$ty>::MAX,
                        _ => <$ty>::MIN,
                    }
                } else {
                    rng.next_u64() as $ty
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Any bit pattern: normals, subnormals, infinities, NaNs.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        loop {
            if let Some(c) = char::from_u32((rng.next_u64() as u32) & 0x1F_FFFF) {
                return c;
            }
        }
    }
}

macro_rules! range_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $ty
            }
        }
    )*};
}

range_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

/// String pattern strategy. Supports exactly the `.{lo,hi}` form
/// (printable ASCII, length in `lo..=hi`) the workspace tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_pattern(self)
            .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
        let len = lo + rng.next_below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| (0x20 + rng.next_below(0x5f) as u8) as char)
            .collect()
    }
}

fn parse_len_pattern(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($n:tt $S:ident),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 S0, 1 S1)
    (0 S0, 1 S1, 2 S2)
    (0 S0, 1 S1, 2 S2, 3 S3)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4)
    (0 S0, 1 S1, 2 S2, 3 S3, 4 S4, 5 S5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.next_below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: {:?} != {:?}",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(*__left == *__right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: {:?} == {:?}",
            __left,
            __right
        );
    }};
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Map, ProptestConfig, Strategy, TestCaseError, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let f = (1e-6f64..1e6).generate(&mut rng);
            assert!((1e-6..1e6).contains(&f));
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::from_name("union");
        let s = prop_oneof![
            (0..10u32).prop_map(|v| v as u64),
            (100..110u32).prop_map(|v| v as u64),
        ];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v), "{v}");
        }
    }

    #[test]
    fn string_pattern_len_bounds() {
        let mut rng = TestRng::from_name("strings");
        for _ in 0..200 {
            let s = ".{0,32}".generate(&mut rng);
            assert!(s.len() <= 32);
            assert!(s.is_ascii());
        }
    }
}
