//! Minimal in-tree stand-in for `crossbeam-deque` (offline build — the
//! real crate cannot be fetched without network access).
//!
//! Keeps the work-stealing *semantics* the `amt` runtime relies on —
//! LIFO owner pops for cache locality, FIFO steals from the opposite
//! end, batched injector drains — while using a mutex-protected
//! `VecDeque` instead of the real crate's lock-free Chase-Lev deque.
//! Contention on a handful of worker threads is negligible for the
//! workloads in this repo; correctness is what matters here.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> MutexGuard<'_, VecDeque<T>> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Owner side of a per-worker deque. Push/pop at the back (LIFO);
/// stealers take from the front.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        lock(&self.queue).pop_back()
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

/// Thief side of a worker's deque; steals one task from the front.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

/// Global FIFO injector for submissions from outside the worker pool.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        lock(&self.queue).push_back(task);
    }

    pub fn is_empty(&self) -> bool {
        lock(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        lock(&self.queue).len()
    }

    pub fn steal(&self) -> Steal<T> {
        match lock(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Drain a batch (up to half the injector, capped) into `worker`'s
    /// queue and return one task immediately, like the real crate.
    pub fn steal_batch_and_pop(&self, worker: &Worker<T>) -> Steal<T> {
        const MAX_BATCH: usize = 32;
        let mut q = lock(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        let extra = (q.len() / 2).min(MAX_BATCH);
        if extra > 0 {
            let mut w = lock(&worker.queue);
            for _ in 0..extra {
                match q.pop_front() {
                    Some(t) => w.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: LIFO
        assert_eq!(s.steal(), Steal::Success(1)); // thief: FIFO
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batches_into_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // Half of the remaining 9 tasks moved into the worker's queue.
        assert_eq!(w.len(), 4);
        assert_eq!(inj.len(), 5);
    }
}
