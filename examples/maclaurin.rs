//! The paper's Maclaurin benchmark in all four parallelism styles, run on
//! the host and projected onto the four testbed CPUs.
//!
//! ```bash
//! cargo run --release --example maclaurin [-- <terms>]
//! ```

use octotiger_riscv_repro::amt::Runtime;
use octotiger_riscv_repro::machine::CpuArch;
use octotiger_riscv_repro::octo_core::maclaurin::{self, Approach};
use octotiger_riscv_repro::octo_core::project::{maclaurin_flops_per_sec, MaclaurinProfile};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2_000_000);
    let x = maclaurin::PAPER_X;
    let fpt = maclaurin::flops_per_term(x);
    println!("n = {n}, x = {x}, measured {fpt:.1} flops/term (paper ≈100)\n");

    let rt = Runtime::new(4);
    for approach in Approach::ALL {
        rt.reset_stats();
        let start = std::time::Instant::now();
        let sum = maclaurin::run(approach, &rt.handle(), x, n);
        let host_secs = start.elapsed().as_secs_f64();
        let stats = rt.stats();
        let profile = MaclaurinProfile {
            terms: n,
            flops_per_term: fpt,
            tasks: stats.tasks_spawned,
            sched_events: stats.steals + stats.yields,
        };
        println!(
            "{:<22} sum={sum:.10} host={host_secs:.3}s tasks={}",
            approach.label(),
            stats.tasks_spawned
        );
        for arch in [CpuArch::Epyc7543, CpuArch::A64fx, CpuArch::RiscvU74] {
            let f = maclaurin_flops_per_sec(arch, 4, approach, &profile);
            println!(
                "    projected on {:<24} {:>10.3e} FLOP/s (4 cores)",
                arch.to_string(),
                f
            );
        }
    }
    println!("\nerror vs ln(1+x): {:.2e}", {
        let want = (1.0 + x).ln();
        (maclaurin::sequential(x, n) - want).abs()
    });
}
