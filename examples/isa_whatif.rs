//! What-if analysis for the paper's proposed RISC-V ISA extensions (§8):
//! single-cycle context switches, extended atomics, hardware
//! exponentiation, hardware task queues, and a minimal V extension.
//!
//! ```bash
//! cargo run --release --example isa_whatif
//! ```

use octotiger_riscv_repro::machine::extensions::{self, IsaExtension};
use octotiger_riscv_repro::machine::CpuArch;
use octotiger_riscv_repro::octo_core::experiments;

fn main() {
    println!("projected ISA-extension speedups on the VisionFive2 (JH7110, 4 cores)\n");
    let pow_bound = experiments::run_whatif(true);
    pow_bound.print();

    // The §8 headline: hardware exponent support on a pow-dominated
    // workload.
    let workload = octo_whatif_workload();
    println!("\nper-extension details for a pow-dominated workload:");
    for ext in IsaExtension::ALL {
        let s = extensions::speedup(CpuArch::Jh7110, 4, &workload, ext);
        println!("  {:<20} {s:>5.2}×", ext.label());
    }
    println!(
        "\n§8: \"Adding hardware support for exponents can reduce the number of \
         floating point operations from approximately ceil((2*e)+3) down to 4.\""
    );
}

fn octo_whatif_workload() -> octotiger_riscv_repro::machine::WhatIfWorkload {
    octotiger_riscv_repro::machine::WhatIfWorkload {
        transcendental_flops: 95_000_000_000,
        plain_flops: 5_000_000_000,
        task_events: 50_000,
        queue_events: 20_000,
        atomic_events: 200_000,
    }
}
