//! Two-board distributed run — the paper's §6.2.2 in-house cluster
//! experiment, comparing the TCP, MPI and LCI parcelports.
//!
//! ```bash
//! cargo run --release --example distributed_cluster \
//!     [-- <max_level>] [--hpx:parcelport=<tcp|mpi|lci>] \
//!     [--trace-out=trace.json] [--counter-table=on]
//! ```

use octotiger_riscv_repro::machine::{CpuArch, NetBackend};
use octotiger_riscv_repro::octo_core::project::{dist_cells_per_sec, DistProfile, OctoProfile};
use octotiger_riscv_repro::octotiger::dist_driver::{DistConfig, DistRun};
use octotiger_riscv_repro::octotiger::OctoConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The full Listing-3 flag surface (`--hpx:parcelport`, `--trace-out`,
    // `--counter-table`, ...) plus the legacy positional max_level.
    let mut octo = OctoConfig::from_args(args.iter().map(String::as_str))
        .unwrap_or_else(|e| panic!("bad arguments: {e}"));
    if !args.iter().any(|a| a.starts_with("--max_level")) {
        octo.max_level = args.iter().find_map(|a| a.parse().ok()).unwrap_or(2);
    }
    if !args.iter().any(|a| a.starts_with("--stop_step")) {
        octo.stop_step = 3;
    }
    let level = octo.max_level;

    println!(
        "== supervisor + delegate, rotating star level {level}, {:?} parcelport ==",
        octo.parcelport
    );
    let mut profiles = Vec::new();
    for nodes in [1u32, 2] {
        let metrics = DistRun::execute(DistConfig::from_octo(nodes, octo.clone()));
        println!(
            "{nodes} node(s): {} leaves, owned {:?}, host {:.2}s, wire: {} msgs / {:.2} MiB",
            metrics.leaf_count,
            metrics.owned_per_node,
            metrics.elapsed_seconds,
            metrics.net.messages,
            metrics.net.bytes as f64 / (1024.0 * 1024.0)
        );
        let mut per_work = metrics.work;
        let n = u64::from(nodes);
        per_work.hydro_flops /= n;
        per_work.gravity_flops /= n;
        per_work.bytes /= n;
        per_work.ghost_samples /= n;
        per_work.ghost_slab_bytes /= n;
        profiles.push((
            metrics.cells_processed,
            DistProfile {
                per_node: OctoProfile {
                    work: per_work,
                    cells_processed: metrics.cells_processed / n,
                    steps: metrics.steps,
                    tasks: metrics.runtime_stats.tasks_spawned / n,
                    kokkos_dispatch: true,
                    kernel_launches: metrics.leaf_count as u64 * 4 * u64::from(metrics.steps) / n,
                },
                nodes,
                messages: metrics.net.messages,
                bytes: metrics.net.bytes,
            },
        ));
    }

    if let Some(path) = &octo.trace_out {
        println!("\nChrome trace written to {path} (load it at https://ui.perfetto.dev)");
    }

    let (total, p1) = &profiles[0];
    let (_, p2) = &profiles[1];
    println!("\nprojected on the VisionFive2 boards (JH7110, 4 cores):");
    let one = dist_cells_per_sec(CpuArch::Jh7110, 4, NetBackend::Tcp, p1, *total);
    println!("  1 board            {one:>12.0} cells/s");
    for backend in [NetBackend::Tcp, NetBackend::Mpi, NetBackend::Lci] {
        let two = dist_cells_per_sec(CpuArch::Jh7110, 4, backend, p2, *total);
        println!(
            "  2 boards via {:<5} {two:>12.0} cells/s (speedup {:.2}×)",
            format!("{backend:?}"),
            two / one
        );
    }
    println!("  (paper: TCP ≈1.85×, MPI ≈1.55×; LCI projected from its link model)");
}
