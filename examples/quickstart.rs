//! Quickstart: the whole stack in one page.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use octotiger_riscv_repro::machine::{CpuArch, PowerModel};
use octotiger_riscv_repro::{amt, kokkos_lite, octo_core, octotiger};

fn main() {
    // 1. The HPX-like task runtime: futures, continuations, parallel
    //    algorithms.
    let rt = amt::Runtime::new(4);
    let answer = rt.spawn(|| 21).then(|x| x * 2).get();
    println!("amt: spawned future resolved to {answer}");

    let sum = amt::par::transform_reduce(
        &rt.handle(),
        amt::par::ExecutionPolicy::Par,
        1..1_000_001,
        0u64,
        |i| i as u64,
        |a, b| a + b,
    );
    println!("amt: parallel sum 1..=1e6 = {sum}");

    // 2. Kokkos-like portable kernels: same body on Serial and HPX spaces.
    let mut field = kokkos_lite::View::<f64>::new_3d("demo", 8, 8, 8);
    let n = field.size();
    kokkos_lite::parallel_fill(
        &kokkos_lite::HpxSpace::new(rt.handle()),
        field.as_mut_slice(),
        |i| (i % 8) as f64,
    );
    let total = kokkos_lite::parallel_reduce_sum(
        &kokkos_lite::Serial,
        kokkos_lite::RangePolicy::new(0, n),
        |i| field.as_slice()[i],
    );
    println!("kokkos-lite: {n}-cell view filled and reduced to {total}");

    // 3. The Maclaurin benchmark (the paper's Eq. 1), async style.
    let ln_1_5 = octo_core::maclaurin::futures_style(&rt.handle(), 0.5, 1_000_000, 16);
    println!(
        "maclaurin: ln(1.5) ≈ {ln_1_5:.9} (exact {:.9})",
        1.5f64.ln()
    );

    // 4. A tiny Octo-Tiger rotating-star run (level 1, two steps).
    let cfg = octotiger::OctoConfig {
        max_level: 1,
        stop_step: 2,
        ..octotiger::OctoConfig::default()
    };
    let mut driver = octotiger::Driver::new(cfg);
    let metrics = driver.run(4);
    println!(
        "octotiger: {} leaves / {} cells, {:.0} cells/s on this host",
        metrics.leaf_count, metrics.cell_count, metrics.cells_per_second
    );

    // 5. The machine model: peak performance and power of the paper's CPUs.
    for arch in CpuArch::TABLE2 {
        println!(
            "machine: {:<24} peak {:>7.1} GFLOP/s, {:>5.2} W at 4 busy cores",
            arch.spec().name,
            arch.peak_gflops_full(),
            PowerModel::for_arch(arch).power_watts(4)
        );
    }
}
