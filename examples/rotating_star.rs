//! Node-level rotating-star simulation — the paper's §6.2.1 run, accepting
//! the same command-line options as Listing 2:
//!
//! ```bash
//! cargo run --release --example rotating_star -- \
//!     --max_level=2 --stop_step=5 --theta=0.5 \
//!     --hydro_host_kernel_type=KOKKOS --hpx:threads=4
//! ```

use octotiger_riscv_repro::machine::CpuArch;
use octotiger_riscv_repro::octo_core::project::{octo_cells_per_sec, OctoProfile};
use octotiger_riscv_repro::octotiger::{Driver, KernelType, OctoConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = OctoConfig::from_args(args.iter().map(String::as_str))
        .unwrap_or_else(|e| panic!("bad arguments: {e}"));
    // Default to a laptop-friendly level unless the caller asked otherwise.
    if !args.iter().any(|a| a.starts_with("--max_level")) {
        cfg.max_level = 2;
    }
    println!(
        "rotating star: level {}, {} steps, θ = {}, kernels = {:?}/{:?}/{:?}, {} threads",
        cfg.max_level,
        cfg.stop_step,
        cfg.theta,
        cfg.hydro_kernel,
        cfg.multipole_kernel,
        cfg.monopole_kernel,
        cfg.threads
    );

    let mut driver = Driver::new(cfg.clone());
    let mass_before = driver.tree().total_mass();
    println!(
        "tree: {} leaves, {} cells (paper level 4: 1184 leaves / 606208 cells)",
        driver.tree().leaf_count(),
        driver.tree().cell_count()
    );

    let metrics = driver.run(cfg.threads);
    let mass_after = driver.tree().total_mass();
    if let Some(path) = &cfg.trace_out {
        println!("Chrome trace written to {path} (load it at https://ui.perfetto.dev)");
    }

    println!(
        "host: {:.2}s for {} steps → {:.0} cells/s; sim time {:.4}",
        metrics.elapsed_seconds, metrics.steps, metrics.cells_per_second, metrics.sim_time
    );
    println!(
        "mass conservation: {:.6} → {:.6} (drift {:.2e})",
        mass_before,
        mass_after,
        ((mass_after - mass_before) / mass_before).abs()
    );
    println!(
        "work: {:.2e} hydro flops, {:.2e} gravity flops, {} tasks, {} steals",
        metrics.work.hydro_flops as f64,
        metrics.work.gravity_flops as f64,
        metrics.runtime_stats.tasks_spawned,
        metrics.runtime_stats.steals
    );

    let profile = OctoProfile {
        work: metrics.work,
        cells_processed: metrics.cells_processed,
        steps: metrics.steps,
        tasks: metrics.runtime_stats.tasks_spawned,
        kokkos_dispatch: cfg.hydro_kernel != KernelType::Legacy,
        kernel_launches: metrics.leaf_count as u64 * 4 * u64::from(metrics.steps),
    };
    println!("\nprojected cells/s at 4 cores:");
    for arch in [CpuArch::Jh7110, CpuArch::A64fx, CpuArch::Epyc7543] {
        println!(
            "  {:<28} {:>12.0}",
            arch.to_string(),
            octo_cells_per_sec(arch, 4, &profile)
        );
    }
}
