//! Energy comparison — the paper's §7: a wall power meter on the RISC-V
//! boards vs PowerAPI on Fugaku. Lower *power* on RISC-V, higher *energy*
//! because the run takes ≈7× longer.
//!
//! ```bash
//! cargo run --release --example energy_report
//! ```

use octotiger_riscv_repro::machine::{CpuArch, EnergyReport, PowerMeter, PowerModel};

fn main() {
    // The paper's §7 measurement: a one-minute wall-meter average while the
    // board runs `stress --cpu 4` and Octo-Tiger.
    let board = PowerModel::for_arch(CpuArch::Jh7110);
    let mut meter = PowerMeter::new();
    for second in 0..60 {
        // Octo-Tiger alternates compute phases (4 busy cores) with brief
        // serial phases (1 busy core).
        let busy = if second % 10 == 9 { 1 } else { 4 };
        meter.record(1.0, board.power_watts(busy));
    }
    println!(
        "wall-meter average over 60 s: {:.2} W (paper: 3.22 W for Octo-Tiger, 3.19 W for stress)",
        meter.average_watts()
    );

    // Fig. 9's comparison for a nominal level-4 five-step run: the A64FX
    // finishes ≈7× sooner but draws more power.
    let t_riscv = 700.0;
    let t_a64fx = t_riscv / 7.0;
    println!(
        "\n{:<28} {:>6} {:>10} {:>10}",
        "configuration", "nodes", "watts", "joules"
    );
    for (arch, nodes, t) in [
        (CpuArch::Jh7110, 1, t_riscv),
        (CpuArch::Jh7110, 2, t_riscv / 1.85),
        (CpuArch::A64fx, 1, t_a64fx),
        (CpuArch::A64fx, 2, t_a64fx / 1.9),
    ] {
        let r = EnergyReport::for_run(arch, nodes, 4, t);
        println!(
            "{:<28} {:>6} {:>10.2} {:>10.1}",
            arch.spec().name,
            nodes,
            r.watts_per_node,
            r.joules
        );
    }
    println!("\n→ power is ≈5× lower on the boards, energy still higher (paper §7).");
}
