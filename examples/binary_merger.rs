//! Binary star system — the scenario Octo-Tiger exists for (the paper's
//! Fig. 1 shows a merger with an accretion belt between the components).
//! Builds an unequal-mass binary, evolves a few steps, and reports how AMR
//! concentrates resolution around the pair.
//!
//! ```bash
//! cargo run --release --example binary_merger [-- <max_level>]
//! ```

use octotiger_riscv_repro::octotiger::star::field;
use octotiger_riscv_repro::octotiger::{BinaryStar, Driver, KernelType, OctoConfig};

fn main() {
    let level: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let binary = BinaryStar::paper_like();
    println!(
        "binary: M1 = {:.4} (R = {:.2}), M2 = {:.4} (R = {:.2}), a = {:.2}, Ω = {:.3}",
        binary.primary.mass,
        binary.primary.radius,
        binary.secondary.mass,
        binary.secondary.radius,
        binary.separation,
        binary.orbital_omega
    );

    let cfg = OctoConfig {
        max_level: level,
        stop_step: 3,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    };
    let mut driver = Driver::with_model(&binary, cfg.clone());
    println!(
        "tree: {} leaves / {} cells at max level {}",
        driver.tree().leaf_count(),
        driver.tree().cell_count(),
        level
    );

    // How much of the resolution sits on the two stars?
    let fine = driver
        .tree()
        .leaf_ids()
        .iter()
        .filter(|&&l| driver.tree().node(l).level == driver.tree().deepest_level())
        .count();
    println!(
        "finest-level leaves: {fine} ({:.0}% of all leaves cluster on the binary)",
        100.0 * fine as f64 / driver.tree().leaf_count() as f64
    );

    let m0 = driver.tree().total_mass();
    let metrics = driver.run(cfg.threads);
    let m1 = driver.tree().total_mass();
    println!(
        "evolved {} steps (sim t = {:.4}): {:.0} cells/s on this host",
        metrics.steps, metrics.sim_time, metrics.cells_per_second
    );
    println!(
        "mass: {:.6} → {:.6} (drift {:.2e})",
        m0,
        m1,
        ((m1 - m0) / m0).abs()
    );

    // Sample the density along the line between the two stars: the
    // rarefied bridge region (where mass transfer would develop) sits
    // between two peaks.
    println!("\ndensity along the x-axis:");
    for i in 0..21 {
        let x = -1.0 + i as f64 * 0.1;
        let rho = driver.tree().sample(field::RHO, [x, 0.0, 0.0]);
        let bar = "#".repeat((rho.max(1e-10).log10() + 10.0).max(0.0) as usize);
        println!("  x = {x:>5.1}  ρ = {rho:>9.2e}  {bar}");
    }
}
