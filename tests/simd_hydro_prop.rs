//! Property and regression tests for the vectorized hydro solver and the
//! futurized step pipeline:
//!
//! - at every supported pack width (1/2/4/8) the SIMD MUSCL/HLL kernels and
//!   the staged CFL reduction must match the scalar reference **bitwise**
//!   (far stronger than the 1e-12 the spec asks for) on random states,
//!   including shock discontinuities and floored vacuum cells;
//! - a ten-step futurized run must reproduce the barriered run bitwise on
//!   every conserved field of every leaf;
//! - the SoA staging buffers must recycle through the pool with zero
//!   steady-state allocations (pool misses plateau after the first step and
//!   the disabled tracer never allocates).

use proptest::prelude::*;

use octotiger_riscv_repro::apex_lite::trace;
use octotiger_riscv_repro::octotiger::kernel_backend::{Dispatch, SimdPolicy};
use octotiger_riscv_repro::octotiger::recycle::RecyclePool;
use octotiger_riscv_repro::octotiger::star::{field, GAMMA, NF, P_FLOOR, RHO_FLOOR};
use octotiger_riscv_repro::octotiger::subgrid::{SubGrid, NG, NX};
use octotiger_riscv_repro::octotiger::{hydro, Driver, KernelType, OctoConfig};

/// Fill every cell (ghosts included) from a tiled table of primitive
/// states, with an optional pressure shock at the x midplane and exact
/// vacuum-floor cells wherever the table says so.
fn fill_grid(vals: &[(f64, f64, f64, f64, f64)], shock: bool, vacuum_stride: usize) -> SubGrid {
    let mut g = SubGrid::new([-0.1, -0.1, -0.1], 0.025);
    let n = NX as i64 + NG as i64;
    for i in -(NG as i64)..n {
        for j in -(NG as i64)..n {
            for k in -(NG as i64)..n {
                let idx = ((i + NG as i64) * 49 + (j + NG as i64) * 7 + (k + NG as i64)) as usize;
                let (rho, vx, vy, vz, p) = vals[idx % vals.len()];
                let (rho, vx, vy, vz, mut p) =
                    if vacuum_stride > 0 && idx.is_multiple_of(vacuum_stride) {
                        // Exact floor state: the limiter and both HLL
                        // early-return branches run against clamped values.
                        (RHO_FLOOR, 0.0, 0.0, 0.0, P_FLOOR)
                    } else {
                        (rho, vx, vy, vz, p)
                    };
                if shock && i < NX as i64 / 2 {
                    p *= 100.0;
                }
                let e = p / (GAMMA - 1.0) + 0.5 * rho * (vx * vx + vy * vy + vz * vz);
                g.set(field::RHO, i, j, k, rho);
                g.set(field::SX, i, j, k, rho * vx);
                g.set(field::SY, i, j, k, rho * vy);
                g.set(field::SZ, i, j, k, rho * vz);
                g.set(field::EGAS, i, j, k, e);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simd_hydro_step_matches_scalar_bitwise_at_every_width(
        vals in proptest::collection::vec(
            (1.0e-8f64..5.0, -2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0, 1.0e-10f64..10.0),
            8..32,
        ),
        shock in any::<bool>(),
        vacuum_stride in 0usize..7,
        dt in 1.0e-6f64..1.0e-4,
    ) {
        let g = fill_grid(&vals, shock, vacuum_stride);
        let d = Dispatch::Legacy;
        let state_pool = RecyclePool::new();
        let stage_pool = RecyclePool::new();
        let reference = hydro::step_interior(&g, dt, &d);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            let out = hydro::step_interior_policy(
                &g, dt, &d, SimdPolicy::Width(w), &state_pool, &stage_pool,
            );
            for (c, (a, b)) in reference.iter().zip(&out).enumerate() {
                for f in 0..NF {
                    prop_assert!(
                        a[f].to_bits() == b[f].to_bits(),
                        "width {} diverged at cell {} field {}: {:e} vs {:e}",
                        w, c, f, b[f], a[f]
                    );
                }
            }
            state_pool.release(out);
        }
    }

    #[test]
    fn simd_cfl_reduction_matches_scalar_bitwise_at_every_width(
        vals in proptest::collection::vec(
            (1.0e-8f64..5.0, -2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0, 1.0e-10f64..10.0),
            8..32,
        ),
        shock in any::<bool>(),
        vacuum_stride in 0usize..7,
    ) {
        let g = fill_grid(&vals, shock, vacuum_stride);
        let d = Dispatch::Legacy;
        let stage_pool = RecyclePool::new();
        let reference = hydro::max_signal_speed(&g, &d);
        for w in SimdPolicy::SUPPORTED_WIDTHS {
            let (speed, stage) =
                hydro::max_signal_speed_policy(&g, &d, SimdPolicy::Width(w), &stage_pool);
            prop_assert!(
                speed.to_bits() == reference.to_bits(),
                "width {} CFL diverged: {:e} vs {:e}",
                w, speed, reference
            );
            if let Some(stage) = stage {
                stage.release(&stage_pool);
            }
        }
    }
}

fn run_config(futurize: bool, width: usize, steps: u32) -> OctoConfig {
    let mut cfg = OctoConfig {
        max_level: 1,
        stop_step: steps,
        threads: 3,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    };
    cfg.futurize = futurize;
    cfg.simd_width = width;
    cfg
}

/// The tentpole's correctness gate: the futurized task graph reorders only
/// *independent* work, so ten steps must reproduce the barriered pipeline
/// bitwise — same dt sequence, same conserved fields everywhere.
#[test]
fn futurized_ten_steps_bitwise_equals_barriered() {
    for width in [0, 4] {
        let mut fut = Driver::new(run_config(true, width, 10));
        let mut bar = Driver::new(run_config(false, width, 10));
        let mf = fut.run(3);
        let mb = bar.run(3);
        assert_eq!(mf.steps, 10);
        assert_eq!(
            fut.sim_time().to_bits(),
            bar.sim_time().to_bits(),
            "dt sequence diverged (width {width})"
        );
        assert_eq!(mb.leaf_count, mf.leaf_count);
        let (tf, tb) = (fut.tree(), bar.tree());
        for (&lf, &lb) in tf.leaf_ids().iter().zip(tb.leaf_ids()) {
            let (gf, gb) = (tf.subgrid(lf), tb.subgrid(lb));
            let (df, db) = (gf.interior_data(), gb.interior_data());
            assert_eq!(df.len(), db.len());
            for (c, (a, b)) in df.iter().zip(&db).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "width {width}: leaf {lf:?} value {c} diverged: {a:e} vs {b:e}"
                );
            }
        }
    }
}

/// Satellite (c): after the first step primes the pool, further steps must
/// serve every SoA staging buffer from the free list — zero steady-state
/// allocations — and the disabled tracer must never allocate either.
#[test]
fn staging_buffers_recycle_with_zero_steady_state_allocations() {
    trace::set_enabled(false);
    let tracer_before = trace::tracer_allocs();
    let mut driver = Driver::new(run_config(true, 4, 3));
    let runtime = octotiger_riscv_repro::amt::Runtime::new(3);

    driver.run_on(&runtime);
    let first = driver.stage_pool_stats();
    // The hydro fan-out starts only after every leaf's stage is built, so
    // the first step allocates exactly one staging buffer per leaf.
    assert_eq!(first.misses, driver.tree().leaf_count() as u64);

    driver.run_on(&runtime);
    let second = driver.stage_pool_stats();
    assert_eq!(
        second.misses, first.misses,
        "steady-state steps allocated fresh staging buffers"
    );
    assert!(second.hits > first.hits, "staging buffers were not reused");
    assert_eq!(
        trace::tracer_allocs(),
        tracer_before,
        "disabled tracer allocated during the futurized hydro pipeline"
    );
}
