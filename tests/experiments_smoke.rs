//! End-to-end smoke test: regenerate every exhibit in quick mode and check
//! the paper's headline shapes (who wins, by roughly what factor).

use octotiger_riscv_repro::octo_core::experiments;

#[test]
fn every_exhibit_regenerates() {
    let all = experiments::run_all(true);
    assert_eq!(all.len(), experiments::EXHIBIT_IDS.len());
    for e in &all {
        assert!(
            experiments::EXHIBIT_IDS.contains(&e.id.as_str()),
            "unknown exhibit {}",
            e.id
        );
        let text = e.render();
        assert!(text.contains(&e.id), "render must carry the id");
    }
}

#[test]
fn run_one_rejects_unknown_ids() {
    assert!(experiments::run_one("fig99", true).is_none());
    assert!(experiments::run_one("table2", true).is_some());
}

#[test]
fn headline_shapes_hold_together() {
    // One combined pass so the expensive exhibits are built once.
    let fig4a = experiments::run_fig4a(true);
    let fig8 = experiments::run_fig8(true);

    // §6.1: RISC-V ≈5× slower than A64FX at matched core counts.
    let a64 = fig4a.series_by_label("a64fx").unwrap().y_at(4.0).unwrap();
    let rv = fig4a
        .series_by_label("riscv-u74")
        .unwrap()
        .y_at(4.0)
        .unwrap();
    let gap = a64 / rv;
    assert!((3.5..6.5).contains(&gap), "async gap {gap} should be ≈5");

    // §6.2.2: both backends scale to two boards, TCP better; Fugaku ≈7×.
    let tcp = fig8.series_by_label("RISC-V TCP").unwrap();
    let mpi = fig8.series_by_label("RISC-V MPI").unwrap();
    let fugaku = fig8.series_by_label("Fugaku (4 cores)").unwrap();
    assert!(tcp.y_at(2.0).unwrap() > mpi.y_at(2.0).unwrap());
    let octo_gap = fugaku.y_at(1.0).unwrap() / tcp.y_at(1.0).unwrap();
    assert!(
        (4.0..9.5).contains(&octo_gap),
        "Octo-Tiger gap {octo_gap} should be ≈7"
    );
}
