//! Distributed-stack integration: supervisor/delegate runs over the
//! simulated parcelports, compared against the node-level driver.

use octotiger_riscv_repro::distrib::{Cluster, ClusterConfig, CoalesceConfig, LocalityHandle};
use octotiger_riscv_repro::machine::NetBackend;
use octotiger_riscv_repro::octotiger::dist_driver::{DistConfig, DistRun};
use octotiger_riscv_repro::octotiger::{Driver, KernelType, OctoConfig};

fn octo_cfg() -> OctoConfig {
    OctoConfig {
        max_level: 1,
        stop_step: 3,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

#[test]
fn distributed_and_node_level_drivers_agree_on_tree_shape() {
    let node = Driver::new(octo_cfg());
    let dist = DistRun::execute(DistConfig {
        nodes: 2,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
        octo: octo_cfg(),
    });
    assert_eq!(node.tree().leaf_count(), dist.leaf_count);
    assert_eq!(node.tree().cell_count(), dist.cell_count);
}

#[test]
fn wire_traffic_scales_with_steps() {
    let run = |steps: u32| {
        DistRun::execute(DistConfig {
            nodes: 2,
            threads_per_node: 2,
            backend: NetBackend::Tcp,
            coalesce: CoalesceConfig::default(),
            octo: OctoConfig {
                stop_step: steps,
                ..octo_cfg()
            },
        })
        .net
    };
    let two = run(2);
    let four = run(4);
    assert!(four.messages > two.messages);
    assert!(four.bytes > two.bytes);
    // Per-step traffic is constant (same tree, same halo).
    assert_eq!(four.messages % 2, 0);
    assert!(
        (four.bytes as f64 / two.bytes as f64 - 2.0).abs() < 0.1,
        "bytes: {} vs {}",
        two.bytes,
        four.bytes
    );
}

#[test]
fn actions_compose_into_a_tree_traversal() {
    // A distributed recursive reduction across both localities — the
    // pattern Octo-Tiger's tree traversals use (§3.1: recursion over
    // possibly-remote children with unified syntax).
    let cluster = Cluster::new(ClusterConfig {
        localities: 2,
        threads_per_locality: 2,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
    });
    cluster.register_action(
        "subtree_sum",
        |ctx: &LocalityHandle, gid, children: Vec<octotiger_riscv_repro::distrib::Gid>| -> u64 {
            let own = ctx
                .with_component::<u64, _>(gid, |v| *v)
                .expect("component lives here");
            let futures: Vec<amt::Future<u64>> = children
                .iter()
                .map(|&c| {
                    ctx.invoke(
                        c,
                        "subtree_sum",
                        &Vec::<octotiger_riscv_repro::distrib::Gid>::new(),
                    )
                })
                .collect();
            own + amt::when_all(futures).get().into_iter().sum::<u64>()
        },
    );
    let l0 = cluster.locality(0);
    let l1 = cluster.locality(1);
    // Root on locality 0, four leaves alternating localities.
    let leaves: Vec<_> = (0..4u64)
        .map(|i| {
            if i % 2 == 0 {
                l0.new_component(10 + i)
            } else {
                l1.new_component(10 + i)
            }
        })
        .collect();
    let root = l0.new_component(1u64);
    let total: u64 = l0.invoke(root, "subtree_sum", &leaves).get();
    assert_eq!(total, 1 + 10 + 11 + 12 + 13);
    assert!(cluster.net_stats().remote_actions >= 2);
}

#[test]
fn mpi_and_tcp_runs_produce_identical_physics() {
    // The backend is a *model*; the computation must be bit-identical.
    let tcp = DistRun::execute(DistConfig {
        nodes: 2,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
        octo: octo_cfg(),
    });
    let mpi = DistRun::execute(DistConfig {
        nodes: 2,
        threads_per_node: 2,
        backend: NetBackend::Mpi,
        coalesce: CoalesceConfig::default(),
        octo: octo_cfg(),
    });
    assert_eq!(tcp.cells_processed, mpi.cells_processed);
    assert_eq!(tcp.net.messages, mpi.net.messages);
    assert_eq!(tcp.net.bytes, mpi.net.bytes);
}

#[test]
fn single_node_distributed_run_matches_cell_throughput_shape() {
    let m = DistRun::execute(DistConfig {
        nodes: 1,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: CoalesceConfig::default(),
        octo: octo_cfg(),
    });
    assert_eq!(m.net.messages, 0);
    assert!(m.cells_per_second > 0.0);
    assert!(m.work.flops() > 0);
}
