//! Property tests for the apex-lite Chrome exporter: any well-nested set of
//! per-thread span trees, emitted in completion order (the ring-buffer
//! discipline), must round-trip through `export` → `validate` with exact
//! counts and monotonically-timestamped, strictly-nested spans per worker.
//!
//! These tests build [`Trace`] values directly instead of going through the
//! global tracer, so they are deterministic and safe to run in parallel
//! with anything else in this binary.

use proptest::prelude::*;

use octotiger_riscv_repro::apex_lite::trace::{Cat, Event, EventKind, ThreadMeta, Trace};
use octotiger_riscv_repro::apex_lite::{export, validate};

const NAMES: [&str; 6] = [
    "execute",
    "m2l",
    "p2p",
    "flush",
    "gravity_solve",
    "hydro_step",
];
const CATS: [Cat; 5] = [Cat::Task, Cat::Sched, Cat::Phase, Cat::Gravity, Cat::Comm];

/// Interpret a byte stream as push/pop/instant operations on a span stack,
/// producing one thread's event list in completion order. The stack
/// discipline guarantees strict nesting; the monotonic logical clock
/// guarantees completion-order timestamps.
fn thread_events(ops: &[u8]) -> Vec<Event> {
    let mut t: u64 = 0;
    let mut stack: Vec<(usize, u64)> = Vec::new();
    let mut events = Vec::new();
    let close = |idx: usize, start: u64, end: u64, events: &mut Vec<Event>| {
        events.push(Event {
            cat: CATS[idx % CATS.len()],
            name: NAMES[idx % NAMES.len()],
            ts_ns: start,
            kind: EventKind::Span {
                dur_ns: end - start,
            },
        });
    };
    for &op in ops {
        // Irregular strictly-positive increments, sub-µs included so the
        // three-decimal "ts" formatting is exercised.
        t += 1 + u64::from(op) % 997;
        match op % 3 {
            0 if stack.len() < 12 => stack.push((usize::from(op), t)),
            1 => {
                if let Some((idx, start)) = stack.pop() {
                    close(idx, start, t, &mut events);
                }
            }
            _ => events.push(Event {
                cat: CATS[usize::from(op) % CATS.len()],
                name: NAMES[usize::from(op) % NAMES.len()],
                ts_ns: t,
                kind: EventKind::Instant,
            }),
        }
    }
    while let Some((idx, start)) = stack.pop() {
        t += 1;
        close(idx, start, t, &mut events);
    }
    events
}

fn trace_from(threads_ops: &[Vec<u8>]) -> Trace {
    let threads = threads_ops
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            (
                ThreadMeta {
                    pid: (i % 2) as u32,
                    tid: i as u32,
                    name: format!("worker{i}"),
                },
                thread_events(ops),
            )
        })
        .filter(|(_, ev)| !ev.is_empty())
        .collect();
    Trace {
        threads,
        dropped: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exported_trace_is_valid_with_exact_counts(
        threads_ops in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200),
            1..4,
        )
    ) {
        let trace = trace_from(&threads_ops);
        let spans: u64 = trace
            .threads
            .iter()
            .flat_map(|(_, ev)| ev.iter())
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .count() as u64;
        let instants = trace.len() as u64 - spans;

        let doc = export(&trace);
        let summary = validate(&doc).expect("exported trace must validate");
        prop_assert_eq!(summary.spans, spans);
        prop_assert_eq!(summary.instants, instants);
        prop_assert_eq!(summary.threads, trace.threads.len());
        for name in NAMES {
            prop_assert_eq!(summary.count_name(name), trace.count_name(name));
        }
        for cat in CATS {
            prop_assert_eq!(summary.count_cat(cat.as_str()), trace.count_cat(cat));
        }
    }

    #[test]
    fn breaking_nesting_is_rejected(
        ops in proptest::collection::vec(any::<u8>(), 1..100),
        overlap_ns in 1u64..500,
    ) {
        // Take a valid thread and append two partially-overlapping spans;
        // the validator must reject the document.
        let mut events = thread_events(&ops);
        let base = events.iter().map(|e| e.ts_ns).max().unwrap_or(0) + 10_000;
        events.push(Event {
            cat: Cat::Task,
            name: "a",
            ts_ns: base,
            kind: EventKind::Span { dur_ns: 1_000 },
        });
        events.push(Event {
            cat: Cat::Task,
            name: "b",
            ts_ns: base + overlap_ns,
            kind: EventKind::Span { dur_ns: 1_000 },
        });
        let trace = Trace {
            threads: vec![(
                ThreadMeta { pid: 0, tid: 0, name: "w".to_string() },
                events,
            )],
            dropped: 0,
        };
        let err = validate(&export(&trace)).expect_err("partial overlap must fail");
        prop_assert!(err.contains("partially overlaps"), "unexpected error: {}", err);
    }
}
