//! Physics validation of the Octo-Tiger mini-app across multiple steps:
//! conservation, stability, gravity correctness and backend equivalence.

use octotiger_riscv_repro::amt::Runtime;
use octotiger_riscv_repro::octotiger::star::field;
use octotiger_riscv_repro::octotiger::{Driver, KernelType, OctoConfig};

fn config(kernel: KernelType, level: u32, steps: u32) -> OctoConfig {
    OctoConfig {
        max_level: level,
        stop_step: steps,
        ..OctoConfig::with_all_kernels(kernel)
    }
}

#[test]
fn five_step_run_conserves_mass_and_stays_positive() {
    let mut d = Driver::new(config(KernelType::KokkosSerial, 2, 5));
    let rt = Runtime::new(2);
    let m0 = d.tree().total_mass();
    for _ in 0..5 {
        d.step(&rt);
    }
    let m1 = d.tree().total_mass();
    assert!(
        ((m1 - m0) / m0).abs() < 0.02,
        "mass over 5 steps: {m0} → {m1}"
    );
    for &leaf in d.tree().leaf_ids() {
        let g = d.tree().subgrid(leaf);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    assert!(g.at(field::RHO, i, j, k) > 0.0);
                    assert!(g.at(field::EGAS, i, j, k) > 0.0);
                }
            }
        }
    }
}

#[test]
fn angular_momentum_of_rotating_star_persists() {
    // The star rotates about z; total L_z = Σ (x·s_y − y·s_x) dV must stay
    // within a few percent over a couple of steps.
    let mut d = Driver::new(config(KernelType::KokkosSerial, 2, 2));
    let rt = Runtime::new(2);
    let lz = |d: &Driver| -> f64 {
        let mut total = 0.0;
        for &leaf in d.tree().leaf_ids() {
            let g = d.tree().subgrid(leaf);
            let vol = g.dx * g.dx * g.dx;
            for i in 0..8 {
                for j in 0..8 {
                    for k in 0..8 {
                        let c = g.cell_center(i, j, k);
                        total += (c[0] * g.at(field::SY, i, j, k)
                            - c[1] * g.at(field::SX, i, j, k))
                            * vol;
                    }
                }
            }
        }
        total
    };
    let l0 = lz(&d);
    assert!(l0 > 0.0, "the star must actually rotate: L_z = {l0}");
    d.step(&rt);
    d.step(&rt);
    let l1 = lz(&d);
    assert!(
        ((l1 - l0) / l0).abs() < 0.05,
        "angular momentum drift: {l0} → {l1}"
    );
}

#[test]
fn star_remains_centrally_concentrated() {
    // After a few steps of the near-equilibrium star, the density maximum
    // must remain near the origin (no blow-up, no collapse to the walls).
    let mut d = Driver::new(config(KernelType::KokkosSerial, 2, 3));
    let rt = Runtime::new(2);
    for _ in 0..3 {
        d.step(&rt);
    }
    let mut best = (0.0f64, [0.0f64; 3]);
    for &leaf in d.tree().leaf_ids() {
        let g = d.tree().subgrid(leaf);
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..8 {
                    let rho = g.at(field::RHO, i, j, k);
                    if rho > best.0 {
                        best = (rho, g.cell_center(i, j, k));
                    }
                }
            }
        }
    }
    let r = (best.1[0].powi(2) + best.1[1].powi(2) + best.1[2].powi(2)).sqrt();
    assert!(r < 0.3, "density max wandered to r = {r} (ρ = {})", best.0);
    assert!(best.0 > 0.3, "central density collapsed: {}", best.0);
}

#[test]
fn dt_sequence_is_backend_independent() {
    let rt = Runtime::new(2);
    let mut dts: Vec<Vec<f64>> = Vec::new();
    for kind in KernelType::ALL {
        let mut d = Driver::new(config(kind, 1, 3));
        dts.push((0..3).map(|_| d.step(&rt)).collect());
    }
    for other in &dts[1..] {
        for (a, b) in dts[0].iter().zip(other) {
            assert_eq!(a.to_bits(), b.to_bits(), "dt must not depend on dispatch");
        }
    }
}

#[test]
fn deeper_refinement_reduces_discretization_error() {
    // Grid mass should converge toward the analytic star mass as the tree
    // deepens.
    let star = octotiger_riscv_repro::octotiger::RotatingStar::paper_default();
    let err = |level: u32| -> f64 {
        let d = Driver::new(config(KernelType::KokkosSerial, level, 1));
        ((d.tree().total_mass() - star.mass) / star.mass).abs()
    };
    let e1 = err(1);
    let e3 = err(3);
    assert!(
        e3 < e1,
        "level-3 mass error {e3} must beat level-1 error {e1}"
    );
}
