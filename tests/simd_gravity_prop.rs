//! Property tests for the SIMD gravity kernels: at every supported pack
//! width (1/2/4/8, including non-multiple-of-W source counts that force
//! padded tail loads) the vectorized monopole and multipole kernels must
//! match the scalar reference within 1e-12 relative error on random
//! source distributions.

use proptest::prelude::*;

use octotiger_riscv_repro::octotiger::gravity::{
    monopole_accel_soa, multipole_accel_soa, FarField, Moments,
};
use octotiger_riscv_repro::octotiger::kernel_backend::SimdPolicy;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn rel_err(a: [f64; 3], b: [f64; 3]) -> f64 {
    let diff = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt();
    let norm = (b[0] * b[0] + b[1] * b[1] + b[2] * b[2]).sqrt();
    diff / norm.max(1e-30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simd_monopole_matches_scalar_at_every_width(
        // 1..100 sources: covers lengths below, equal to, and far above a
        // pack, and plenty of non-multiple-of-W tails.
        sources in proptest::collection::vec(
            (0.0f64..10.0, -1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
            1..100,
        ),
        p in (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        eps in 0.01f64..0.5,
    ) {
        let p = [p.0, p.1, p.2];
        let mass: Vec<f64> = sources.iter().map(|s| s.0).collect();
        let sx: Vec<f64> = sources.iter().map(|s| s.1).collect();
        let sy: Vec<f64> = sources.iter().map(|s| s.2).collect();
        let sz: Vec<f64> = sources.iter().map(|s| s.3).collect();
        let reference = monopole_accel_soa(SimdPolicy::Scalar, p, &mass, &sx, &sy, &sz, eps);
        for w in WIDTHS {
            let got = monopole_accel_soa(SimdPolicy::Width(w), p, &mass, &sx, &sy, &sz, eps);
            prop_assert!(
                rel_err(got, reference) < 1e-12,
                "width {} diverged: {:?} vs {:?} ({} sources)",
                w, got, reference, mass.len()
            );
        }
    }

    #[test]
    fn simd_multipole_matches_scalar_at_every_width(
        // Far sources kept ≥ 0.5 away from the target (the MAC guarantees
        // separation in real traversals; the kernel has no softening).
        sources in proptest::collection::vec(
            (
                0.1f64..10.0,
                (1.5f64..4.0, 1.5f64..4.0, 1.5f64..4.0),
                (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0),
                (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0),
            ),
            1..50,
        ),
        p in (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        signs in (any::<bool>(), any::<bool>(), any::<bool>()),
    ) {
        let p = [p.0, p.1, p.2];
        let mut ff = FarField::new();
        for (mass, com, qa, qb) in &sources {
            // Scatter sources into all octants, still separated from `p`.
            let com = [
                if signs.0 { com.0 } else { -com.0 },
                if signs.1 { com.1 } else { -com.1 },
                if signs.2 { com.2 } else { -com.2 },
            ];
            let quad = [qa.0, qa.1, qa.2, qb.0, qb.1, qb.2];
            ff.push(&Moments { mass: *mass, com, quad });
        }
        let reference = multipole_accel_soa(SimdPolicy::Scalar, p, &ff);
        for w in WIDTHS {
            let got = multipole_accel_soa(SimdPolicy::Width(w), p, &ff);
            prop_assert!(
                rel_err(got, reference) < 1e-12,
                "width {} diverged: {:?} vs {:?} ({} sources)",
                w, got, reference, ff.len()
            );
        }
    }
}
