//! Cross-crate integration: the amt runtime, kokkos-lite kernels and the
//! machine model working together, end to end.

use octotiger_riscv_repro::amt::{self, Runtime};
use octotiger_riscv_repro::kokkos_lite::{self, ExecutionSpace};
use octotiger_riscv_repro::machine::{CostModel, CpuArch, FlopCounter};
use octotiger_riscv_repro::octo_core::maclaurin;

#[test]
fn kokkos_kernel_on_amt_runtime_counts_real_work() {
    // A Kokkos-style kernel dispatched on the HPX-like runtime, with the
    // instrumented flop counter installed on every worker via the kernel
    // body itself.
    let rt = Runtime::new(3);
    let space = kokkos_lite::HpxSpace::new(rt.handle());
    let ctr = FlopCounter::new();
    let n = 10_000;
    let sum = {
        let ctr = std::sync::Arc::clone(&ctr);
        space.reduce_range(
            0..n,
            0.0,
            move |i| {
                let _g = ctr.install();
                let a = octotiger_riscv_repro::machine::CountedF64::new(i as f64);
                (a * a).get()
            },
            |a, b| a + b,
        )
    };
    let expected: f64 = (0..n).map(|i| (i as f64) * (i as f64)).sum();
    assert_eq!(sum, expected);
    assert_eq!(ctr.muls(), n as u64, "one counted multiply per element");
}

#[test]
fn maclaurin_all_styles_scale_and_agree_on_one_runtime() {
    let rt = Runtime::new(4);
    let h = rt.handle();
    let n = 200_000;
    let want = maclaurin::sequential(maclaurin::PAPER_X, n);
    for ap in maclaurin::Approach::ALL {
        let got = maclaurin::run(ap, &h, maclaurin::PAPER_X, n);
        assert!((got - want).abs() < 1e-12, "{ap:?}");
    }
    // All that activity must be visible in the scheduler stats.
    let stats = rt.stats();
    assert!(stats.tasks_spawned > 16);
    assert_eq!(stats.panics, 0);
}

#[test]
fn futures_chain_across_subsystems() {
    // Future → continuation → kokkos kernel → machine projection, one DAG.
    let rt = Runtime::new(2);
    let h = rt.handle();
    let h2 = h.clone();
    let projected = rt
        .spawn(move || {
            let space = kokkos_lite::HpxSpace::new(h2);
            kokkos_lite::parallel_reduce_sum(&space, kokkos_lite::RangePolicy::new(1, 1001), |i| {
                1.0 / i as f64
            })
        })
        .then(|harmonic| {
            // Charge the result's cost on the U74.
            let cm = CostModel::new(CpuArch::RiscvU74);
            (harmonic, cm.flop_seconds(2 * 1000))
        })
        .get();
    assert!((projected.0 - 7.485470).abs() < 1e-5);
    assert!(projected.1 > 0.0);
}

#[test]
fn when_all_spans_execution_spaces() {
    let rt = Runtime::new(3);
    let h = rt.handle();
    let serial_task = {
        let grid_sum = kokkos_lite::parallel_reduce_sum(
            &kokkos_lite::Serial,
            kokkos_lite::RangePolicy::new(0, 100),
            |i| i as f64,
        );
        amt::make_ready_future(grid_sum)
    };
    let hpx_task = {
        let h2 = h.clone();
        h.spawn(move || {
            kokkos_lite::parallel_reduce_sum(
                &kokkos_lite::HpxSpace::new(h2),
                kokkos_lite::RangePolicy::new(0, 100),
                |i| i as f64,
            )
        })
    };
    let results = amt::when_all(vec![serial_task, hpx_task]).get();
    assert_eq!(results[0], results[1]);
}

#[test]
fn runtime_stats_feed_cost_model() {
    // The projection pipeline: run real work, convert event counts to
    // modelled seconds on each architecture.
    let rt = Runtime::new(2);
    rt.reset_stats();
    let futures: Vec<_> = (0..256).map(|i| rt.spawn(move || i as u64)).collect();
    let total: u64 = amt::when_all(futures).get().into_iter().sum();
    assert_eq!(total, 255 * 256 / 2);
    let stats = rt.stats();
    let rv = CostModel::new(CpuArch::RiscvU74).event_seconds(
        octotiger_riscv_repro::machine::RuntimeEvent::TaskSpawn,
        stats.tasks_spawned,
    );
    let amd = CostModel::new(CpuArch::Epyc7543).event_seconds(
        octotiger_riscv_repro::machine::RuntimeEvent::TaskSpawn,
        stats.tasks_spawned,
    );
    assert!(rv > amd, "task overhead must cost more on the U74");
}
