//! End-to-end observability tests: the tracer's zero-allocation guarantee
//! on the scheduler hot path, agreement between trace span counts and
//! `RunMetrics`, the unified counter namespace of a full run, and the
//! performance-observatory layer — critical-path analysis, per-worker
//! utilization, flamegraph export, and the periodic counter sampler.
//!
//! Tracer state is process-global, so every test here serializes on one
//! lock (the harness runs tests in this binary on parallel threads).

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use octotiger_riscv_repro::apex_lite::{self, trace, validate, CounterValue};
use octotiger_riscv_repro::machine::NetBackend;
use octotiger_riscv_repro::octotiger::{DistConfig, DistRun, Driver, KernelType, OctoConfig};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let g = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    trace::set_enabled(false);
    trace::reset();
    g
}

fn tiny_config() -> OctoConfig {
    OctoConfig {
        max_level: 1,
        stop_step: 3,
        threads: 2,
        ..OctoConfig::with_all_kernels(KernelType::KokkosSerial)
    }
}

fn tmp_trace(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("apexlite_{tag}_{}.json", std::process::id()))
}

#[test]
fn disabled_tracing_allocates_nothing_in_scheduler_hot_path() {
    let _g = lock();
    let before = trace::tracer_allocs();
    // A full run spawns hundreds of tasks through every instrumented hot
    // path (execute, steal, park, yield, kernel spans) with tracing off.
    let mut driver = Driver::new(tiny_config());
    let m = driver.run(2);
    assert!(m.runtime_stats.tasks_spawned > 0);
    assert_eq!(
        trace::tracer_allocs(),
        before,
        "disabled tracer allocated on the scheduler hot path"
    );
    assert!(trace::drain().is_empty(), "disabled tracer recorded events");
}

#[test]
fn trace_spans_agree_with_run_metrics() {
    let _g = lock();
    let path = tmp_trace("driver");
    let mut cfg = tiny_config();
    // Barriered mode: exactly one span per phase per step. (The futurized
    // graph emits per-*leaf* hydro/gravity spans instead — covered below.)
    cfg.futurize = false;
    cfg.trace_out = Some(path.to_string_lossy().into_owned());
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(2);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);

    // Driver phases: one span per step each.
    let steps = u64::from(metrics.steps);
    for phase in [
        "ghost_exchange",
        "cfl_reduction",
        "gravity_solve",
        "hydro_step",
    ] {
        assert_eq!(summary.count_name(phase), steps, "phase {phase}");
    }
    // The ISSUE's cross-check: gravity cache-rebuild spans equal the
    // interaction cache's measured miss count (1 for a static topology).
    assert_eq!(summary.count_name("cache_rebuild"), metrics.cache.misses);
    assert_eq!(metrics.cache.misses, 1);
    // Scheduler task spans cover the spawned kernels (inline degraded-mode
    // execution is also spanned, so ≥ is the safe direction).
    assert!(summary.count_cat("task") > 0, "no scheduler task spans");
    assert!(summary.count_cat("gravity") > 0, "no gravity kernel spans");
    // Counter dump rides along in the metrics.
    assert!(
        metrics.counters.get("/gravity/cache_misses")
            == Some(CounterValue::Count(metrics.cache.misses))
    );
}

#[test]
fn futurized_trace_shows_per_leaf_spans_overlapping_across_workers() {
    let _g = lock();
    let path = tmp_trace("futurized");
    let mut cfg = tiny_config();
    cfg.threads = 4;
    cfg.futurize = true;
    cfg.trace_out = Some(path.to_string_lossy().into_owned());
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(4);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("futurized trace must validate");
    let _ = std::fs::remove_file(&path);

    // The phase barriers are gone: gravity_solve and hydro_step are now
    // per-*leaf* task spans, one per leaf per step, plus one span per step
    // for the serial joins (dt reduction, M2M + interaction lists).
    let steps = u64::from(metrics.steps);
    let leaf_spans = steps * metrics.leaf_count as u64;
    for name in ["cfl_leaf", "p2m_leaf", "gravity_solve", "hydro_step"] {
        assert_eq!(summary.count_name(name), leaf_spans, "per-leaf {name}");
    }
    assert_eq!(summary.count_name("cfl_reduction"), steps);
    assert_eq!(summary.count_name("gravity_moments"), steps);
    assert_eq!(summary.count_name("ghost_exchange"), steps);

    // The tentpole's proof obligation: gravity kernels on one worker ran
    // while hydro kernels ran on another — positive wall-clock overlap
    // both in the trace and in the driver's envelope counter.
    assert!(
        summary.overlap_ns("gravity_solve", "hydro_step") > 0,
        "futurized run never interleaved gravity and hydro spans"
    );
    assert!(
        metrics.overlap_ratio > 0.0,
        "overlap_ratio not positive: {}",
        metrics.overlap_ratio
    );
    assert!(
        metrics.counters.get("/runtime/overlap_ratio")
            == Some(CounterValue::Gauge(metrics.overlap_ratio))
    );
}

#[test]
fn barriered_run_reports_zero_overlap() {
    let _g = lock();
    let mut cfg = tiny_config();
    cfg.futurize = false;
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(2);
    // Phases are separated by full task barriers: the gravity and hydro
    // kernel envelopes cannot intersect.
    assert_eq!(metrics.overlap_ratio, 0.0);
}

#[test]
fn single_node_dist_trace_covers_all_three_layers_and_counters() {
    let _g = lock();
    let path = tmp_trace("dist");
    let mut octo = tiny_config();
    octo.trace_out = Some(path.to_string_lossy().into_owned());
    let cfg = DistConfig {
        nodes: 1,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: Default::default(),
        octo,
    };
    let metrics = DistRun::execute(cfg);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);

    // All three layers must appear even on one locality: scheduler tasks,
    // driver phases, and the parcelport/coalescer flush path.
    assert!(summary.count_cat("task") > 0, "no scheduler spans");
    assert!(summary.count_cat("phase") > 0, "no driver phase spans");
    assert!(summary.count_cat("comm") > 0, "no comm spans");
    assert!(summary.count_name("flush") > 0, "no coalescer flush spans");

    // Unified counter dump: ≥ 20 counters spanning all the namespaces.
    assert!(
        metrics.counters.len() >= 20,
        "only {} counters: {:?}",
        metrics.counters.len(),
        metrics.counters
    );
    for prefix in ["/runtime/", "/comms/", "/gravity/", "/work/", "/energy/"] {
        assert!(
            metrics.counters.iter().any(|(k, _)| k.starts_with(prefix)),
            "no counters under {prefix}: {:?}",
            metrics.counters
        );
    }
}

#[test]
fn two_node_trace_merges_locality_prefixed_pids() {
    let _g = lock();
    let path = tmp_trace("dist2");
    let mut octo = tiny_config();
    octo.stop_step = 2;
    octo.trace_out = Some(path.to_string_lossy().into_owned());
    let cfg = DistConfig {
        nodes: 2,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: Default::default(),
        octo,
    };
    let metrics = DistRun::execute(cfg);
    assert_eq!(metrics.nodes, 2);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);

    // Both localities' workers must appear as distinct Chrome process
    // lanes, merged into one stream.
    assert!(
        summary.pids >= 2,
        "expected ≥2 locality pids, got {}",
        summary.pids
    );
    assert!(text.contains("locality0") && text.contains("locality1"));
    // Real wire traffic shows up as parcel_send spans with matching flow
    // events on the receiving locality.
    assert!(summary.count_name("parcel_send") > 0);
    assert!(summary.count_name("parcel_recv") > 0);
    assert!(
        !summary.flow_edges.is_empty(),
        "wire traffic produced no matched flow pairs"
    );
    // The HWM-step satellite: the queue-depth high-water mark carries the
    // step index it occurred at (within the executed step range).
    assert!(metrics.port.queue_depth_hwm_step < u64::from(metrics.steps).max(1));
}

#[test]
fn critical_path_bounds_hold_on_futurized_trace() {
    let _g = lock();
    let path = tmp_trace("critpath");
    let mut cfg = tiny_config();
    cfg.threads = 4;
    cfg.futurize = true;
    cfg.trace_out = Some(path.to_string_lossy().into_owned());
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(4);
    assert!(metrics.steps > 0);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);

    let phases = apex_lite::default_phases(&summary);
    assert!(
        phases.iter().any(|p| p == "hydro_step"),
        "phase autodetection missed hydro_step: {phases:?}"
    );
    let cp = apex_lite::critical_path(&summary, &phases);

    // The property pair: the critical path can never exceed the trace's
    // wall window, and can never undershoot the busiest single phase
    // (that phase's own merged segments are one feasible chain).
    assert!(cp.path_ns > 0, "empty critical path on a traced run");
    assert!(
        cp.path_ns <= cp.wall_ns,
        "critical path {} ns exceeds wall {} ns",
        cp.path_ns,
        cp.wall_ns
    );
    let max_phase_active = cp.by_phase.iter().map(|p| p.active_ns).max().unwrap_or(0);
    assert!(
        cp.path_ns >= max_phase_active,
        "critical path {} ns below busiest phase {} ns",
        cp.path_ns,
        max_phase_active
    );
    assert!(!cp.segments.is_empty());

    // Utilization rows: one per traced lane, with positive busy time on
    // the workers that executed kernels.
    let util = apex_lite::worker_utilization(&summary);
    assert!(!util.is_empty(), "no worker utilization rows");
    assert!(
        util.iter().any(|w| w.busy_ns > 0),
        "no worker recorded busy time"
    );
    let imb = apex_lite::imbalance_ratio(&util);
    assert!(imb >= 1.0, "imbalance ratio {imb} below 1.0 with busy data");

    // Flamegraph: collapsed stacks must be non-empty and carry the
    // per-leaf kernel frames.
    let stacks = apex_lite::collapsed_stacks(&summary);
    assert!(!stacks.is_empty(), "empty flamegraph");
    let rendered = apex_lite::render_collapsed(&stacks);
    assert!(rendered.contains("hydro_step"), "flamegraph lost kernels");
}

#[test]
fn per_phase_path_totals_agree_with_run_metrics() {
    let _g = lock();
    let path = tmp_trace("phase_agree");
    let mut cfg = tiny_config();
    // Barriered mode: exactly one span per phase per step, so the
    // analyzer's per-phase span counts are fully determined by RunMetrics.
    cfg.futurize = false;
    cfg.trace_out = Some(path.to_string_lossy().into_owned());
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(2);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);

    let cp = apex_lite::critical_path(&summary, &apex_lite::default_phases(&summary));
    let steps = u64::from(metrics.steps);
    for phase in [
        "ghost_exchange",
        "cfl_reduction",
        "gravity_solve",
        "hydro_step",
    ] {
        let row = cp
            .by_phase
            .iter()
            .find(|p| p.name == phase)
            .unwrap_or_else(|| panic!("phase {phase} missing from critical-path table"));
        assert_eq!(row.spans, steps, "span count for {phase}");
        assert!(row.active_ns > 0, "no active time for {phase}");
    }
    // Barriered phases never overlap, so the path covers every phase's
    // full active time: path == sum of per-phase contributions.
    let contributed: u64 = cp.by_phase.iter().map(|p| p.path_ns).sum();
    assert_eq!(cp.path_ns, contributed);
}

#[test]
fn sampler_records_counter_series_into_csv_and_trace() {
    let _g = lock();
    let trace_path = tmp_trace("sampler");
    let csv_path = std::env::temp_dir().join(format!("apexlite_series_{}.csv", std::process::id()));
    let mut cfg = tiny_config();
    cfg.stop_step = 5;
    cfg.sample_interval_ms = Some(1);
    cfg.metrics_out = Some(csv_path.to_string_lossy().into_owned());
    cfg.trace_out = Some(trace_path.to_string_lossy().into_owned());
    let mut driver = Driver::new(cfg);
    let metrics = driver.run(2);
    assert!(
        metrics.counter_samples > 0,
        "1 ms sampler took no samples over a full run"
    );

    // CSV dump: header plus one row per (series, point).
    let csv = std::fs::read_to_string(&csv_path).expect("metrics CSV written");
    let _ = std::fs::remove_file(&csv_path);
    assert!(csv.starts_with("# apex-lite counter time-series"));
    assert!(csv.contains("series,ts_ms,value"));
    assert!(
        csv.contains("/runtime/imbalance,"),
        "imbalance gauge missing from CSV"
    );

    // The same series ride along in the Chrome trace as counter events
    // and reassemble on validation.
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = validate(&text).expect("trace with counters must validate");
    let _ = std::fs::remove_file(&trace_path);
    assert!(summary.counter_events > 0, "no counter events in trace");
    let series = summary
        .counter_series
        .get("/runtime/imbalance")
        .expect("imbalance series missing from trace");
    assert!(!series.is_empty());
    assert!(
        series.windows(2).all(|w| w[0].0 <= w[1].0),
        "sampler timestamps not monotone"
    );
}

#[test]
fn coalesced_two_node_run_routes_critical_path_through_network_legs() {
    let _g = lock();
    let path = tmp_trace("dist_flows");
    let mut octo = tiny_config();
    octo.stop_step = 2;
    octo.coalesce = true;
    octo.sample_interval_ms = Some(1);
    octo.trace_out = Some(path.to_string_lossy().into_owned());
    let cfg = DistConfig::from_octo(2, octo);
    assert!(cfg.coalesce.enabled, "--coalesce=on must reach the cluster");
    let metrics = DistRun::execute(cfg);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace with flow events must validate");
    let _ = std::fs::remove_file(&path);

    // Every received parcel pairs its sender's "s" with its receiver's
    // "f" — the Perfetto arrows exist and cross locality pids.
    assert!(!summary.flow_edges.is_empty(), "no matched flow pairs");
    assert!(
        summary.flow_edges.iter().any(|e| e.src_pid != e.dst_pid),
        "no flow crosses a locality boundary"
    );

    // The ISSUE's acceptance bundle on the distributed critical path.
    let phases = apex_lite::default_phases(&summary);
    let d = apex_lite::critical_path_distributed(&summary, &phases);
    assert!(
        d.network_edges_on_path >= 1,
        "critical path crosses no network leg ({} flow edges)",
        summary.flow_edges.len()
    );
    assert!(d.network_ns > 0, "network legs contribute no path time");
    assert!(
        d.path.path_ns <= d.path.wall_ns,
        "distributed path {} ns exceeds wall {} ns",
        d.path.path_ns,
        d.path.wall_ns
    );
    for (pid, &per) in &d.per_locality_path_ns {
        assert!(
            d.path.path_ns >= per,
            "distributed path {} ns under locality {pid}'s own path {per} ns",
            d.path.path_ns
        );
    }

    // Latency histogram: exactly one observation per delivered parcel,
    // with ordered percentiles; the coalescer's flush-delay histogram saw
    // every queued parcel too.
    let h = metrics
        .counters
        .histogram("/comms/parcel_latency")
        .expect("parcel latency histogram in final counters");
    assert_eq!(
        h.count(),
        metrics.port.parcels,
        "one observation per parcel"
    );
    let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
    assert!(p50 <= p95 && p95 <= p99, "{p50} / {p95} / {p99}");
    let f = metrics
        .counters
        .histogram("/comms/coalesce_flush_delay")
        .expect("flush delay histogram in final counters");
    assert_eq!(f.count(), metrics.port.parcels);
    assert!(metrics.port.batches > 0, "coalescing produced no batches");

    // The sampled series carry the same invariant into the trace, where
    // trace_report's --check gate reads them.
    let series_count = summary
        .counter_series
        .get("/comms/parcel_latency")
        .and_then(|pts| pts.last())
        .map(|&(_, v)| v)
        .expect("/comms/parcel_latency series in trace");
    let series_parcels = summary
        .counter_series
        .get("/comms/parcels")
        .and_then(|pts| pts.last())
        .map(|&(_, v)| v)
        .expect("/comms/parcels series in trace");
    assert_eq!(series_count, series_parcels);
}

#[test]
fn dist_run_exports_global_imbalance_and_counter_series() {
    let _g = lock();
    let path = tmp_trace("dist_sampler");
    let mut octo = tiny_config();
    octo.stop_step = 2;
    octo.sample_interval_ms = Some(1);
    octo.trace_out = Some(path.to_string_lossy().into_owned());
    let cfg = DistConfig {
        nodes: 2,
        threads_per_node: 2,
        backend: NetBackend::Tcp,
        coalesce: Default::default(),
        octo,
    };
    let metrics = DistRun::execute(cfg);
    assert!(metrics.counter_samples > 0);

    // The cluster-wide roll-up next to the per-locality gauges.
    assert!(
        matches!(
            metrics.counters.get("/runtime/imbalance"),
            Some(CounterValue::Gauge(v)) if v >= 0.0
        ),
        "global /runtime/imbalance gauge missing: {:?}",
        metrics.counters.get("/runtime/imbalance")
    );
    for loc in 0..2 {
        let key = format!("/runtime/locality{loc}/imbalance");
        assert!(
            matches!(metrics.counters.get(&key), Some(CounterValue::Gauge(_))),
            "{key} missing"
        );
    }

    // Locality-prefixed series land in the merged trace.
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let summary = validate(&text).expect("trace must validate");
    let _ = std::fs::remove_file(&path);
    assert!(summary.counter_events > 0);
    assert!(
        summary
            .counter_series
            .keys()
            .any(|k| k.starts_with("/runtime/locality")),
        "no locality-prefixed counter series: {:?}",
        summary.counter_series.keys().collect::<Vec<_>>()
    );
    assert!(summary.counter_series.contains_key("/runtime/imbalance"));
}
