//! Property-based tests (proptest) on the core data structures and
//! invariants of the stack.

use proptest::prelude::*;

use octotiger_riscv_repro::amt::{par, when_all, Runtime};
use octotiger_riscv_repro::distrib::{from_bytes, to_bytes};
use octotiger_riscv_repro::kokkos_lite::{Layout, MDRangePolicy, View};
use octotiger_riscv_repro::machine::counted::softmath;
use octotiger_riscv_repro::octotiger::star::RotatingStar;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- wire format ----

    #[test]
    fn wire_roundtrips_arbitrary_f64_vectors(data in proptest::collection::vec(any::<f64>(), 0..256)) {
        let bytes = to_bytes(&data).unwrap();
        let back: Vec<f64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in back.iter().zip(&data) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_roundtrips_nested_structures(
        pairs in proptest::collection::vec((any::<u64>(), proptest::option::of(any::<i32>())), 0..64),
        tag in ".{0,32}",
    ) {
        let value = (tag.clone(), pairs.clone());
        let bytes = to_bytes(&value).unwrap();
        let back: (String, Vec<(u64, Option<i32>)>) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    #[test]
    fn wire_rejects_any_truncation(v in proptest::collection::vec(any::<u32>(), 1..32)) {
        let bytes = to_bytes(&v).unwrap();
        // Every strict prefix must fail to decode (never panic).
        for cut in 0..bytes.len() {
            prop_assert!(from_bytes::<Vec<u32>>(&bytes[..cut]).is_err());
        }
    }

    // ---- parallel algorithms ----

    #[test]
    fn split_range_partitions_any_range(start in 0usize..1000, len in 0usize..1000, chunks in 1usize..64) {
        let parts = par::split_range(start..start + len, chunks);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, len);
        let mut expected = start;
        for p in &parts {
            prop_assert_eq!(p.start, expected);
            prop_assert!(!p.is_empty());
            expected = p.end;
        }
        if len > 0 {
            prop_assert_eq!(expected, start + len);
            prop_assert!(parts.len() <= chunks);
            // Balanced: sizes differ by at most one.
            let min = parts.iter().map(|r| r.len()).min().unwrap();
            let max = parts.iter().map(|r| r.len()).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }

    #[test]
    fn transform_reduce_matches_serial_for_any_input(data in proptest::collection::vec(-1000i64..1000, 1..512)) {
        let rt = Runtime::new(2);
        let serial: i64 = data.iter().sum();
        let parallel = par::transform_reduce(
            &rt.handle(),
            par::ExecutionPolicy::Par,
            0..data.len(),
            0i64,
            |i| data[i],
            |a, b| a + b,
        );
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn when_all_preserves_arbitrary_order(values in proptest::collection::vec(any::<i32>(), 0..64)) {
        let rt = Runtime::new(2);
        let futures: Vec<_> = values
            .iter()
            .map(|&v| rt.spawn(move || v))
            .collect();
        let got = when_all(futures).get();
        prop_assert_eq!(got, values);
    }

    // ---- views ----

    #[test]
    fn view_indexing_is_bijective_for_any_extents(
        d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6,
        left in any::<bool>(),
    ) {
        let layout = if left { Layout::Left } else { Layout::Right };
        let v: View<u8> = View::with_layout("p", &[d0, d1, d2], layout);
        let mut seen = vec![false; v.size()];
        for i in 0..d0 {
            for j in 0..d1 {
                for k in 0..d2 {
                    let idx = v.index3(i, j, k);
                    prop_assert!(idx < v.size());
                    prop_assert!(!seen[idx]);
                    seen[idx] = true;
                }
            }
        }
    }

    #[test]
    fn mdrange_unflatten_inverts_flatten(d0 in 1usize..8, d1 in 1usize..8, d2 in 1usize..8) {
        let p = MDRangePolicy::new([d0, d1, d2]);
        for flat in 0..p.len() {
            let (i, j, k) = p.unflatten(flat);
            prop_assert_eq!((i * d1 + j) * d2 + k, flat);
        }
    }

    // ---- software math (the perf substitute) ----

    #[test]
    fn soft_ln_tracks_libm(x in 1e-6f64..1e6) {
        let got = softmath::soft_ln(x);
        let want = x.ln();
        prop_assert!((got - want).abs() <= 1e-11 * want.abs().max(1.0),
            "ln({}) = {} vs {}", x, got, want);
    }

    #[test]
    fn soft_exp_tracks_libm(y in -700.0f64..700.0) {
        let got = softmath::soft_exp(y);
        let want = y.exp();
        prop_assert!(((got - want) / want).abs() < 1e-11,
            "exp({}) = {} vs {}", y, got, want);
    }

    #[test]
    fn soft_pow_tracks_libm(x in 0.01f64..100.0, y in -50.0f64..50.0) {
        let got = softmath::soft_pow(x, y);
        let want = x.powf(y);
        if want.is_finite() && want != 0.0 {
            prop_assert!(((got - want) / want).abs() < 1e-9,
                "pow({}, {}) = {} vs {}", x, y, got, want);
        }
    }

    // ---- star model ----

    #[test]
    fn star_density_never_negative_or_nan(
        radius in 0.1f64..2.0,
        rhoc in 0.1f64..10.0,
        frac in 0.0f64..0.9,
        r in 0.0f64..5.0,
    ) {
        let star = RotatingStar::new(radius, rhoc, frac);
        let rho = star.density(r);
        prop_assert!(rho.is_finite());
        prop_assert!(rho > 0.0);
        prop_assert!(rho <= rhoc * 1.0001);
    }

    #[test]
    fn star_conserved_state_is_physical(x in -1.0f64..1.0, y in -1.0f64..1.0, z in -1.0f64..1.0) {
        let star = RotatingStar::paper_default();
        let u = star.conserved_at(x, y, z);
        prop_assert!(u[0] > 0.0, "positive density");
        prop_assert!(u[4] > 0.0, "positive energy");
        // Energy must dominate kinetic energy (positive internal energy).
        let kinetic = 0.5 * (u[1] * u[1] + u[2] * u[2] + u[3] * u[3]) / u[0];
        prop_assert!(u[4] >= kinetic);
    }
}
