//! Property tests for the log-bucketed latency [`Histogram`]: percentile
//! estimates stay within the bucket-width error bound of the exact
//! sorted-slice percentiles, and merging locality snapshots is
//! associative and commutative — the invariants the distributed comms
//! counters (`/comms/parcel_latency` across localities) lean on.
//!
//! [`Histogram`]: apex_lite::Histogram

use apex_lite::{Histogram, HISTOGRAM_MAX_RELATIVE_ERROR};
use proptest::prelude::*;

/// Latency-shaped observations: spread over many octaves (ns to tens of
/// seconds) so the test exercises the exact sub-16 buckets, the linear
/// sub-buckets, and the high octaves alike.
fn arb_latencies() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            0u64..16,                    // exact unit buckets
            16u64..4096,                 // low octaves
            4096u64..10_000_000,         // microsecond-to-ms band
            10_000_000u64..u64::MAX / 2, // tail
        ],
        1..400,
    )
}

/// The ⌈q·n⌉-th smallest observation — the definition `quantile`
/// approximates through its buckets.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every percentile estimate lands within the advertised relative
    /// error of the exact order statistic (exactly on it below 16).
    #[test]
    fn quantiles_match_exact_percentiles_within_bucket_error(
        values in arb_latencies(),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            if exact < 16 {
                prop_assert_eq!(est, exact, "unit buckets are exact (q={})", q);
            } else {
                // The estimate is the midpoint of the bucket holding the
                // exact order statistic; bucket width ≤ lo/4, so the
                // midpoint is within lo/8 of any member (+1 for the
                // integer midpoint rounding).
                let tol = (exact as f64 * HISTOGRAM_MAX_RELATIVE_ERROR) as u64 + 1;
                prop_assert!(
                    est.abs_diff(exact) <= tol,
                    "q={}: estimate {} vs exact {} (tol {})",
                    q, est, exact, tol
                );
            }
        }
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Percentiles are monotone in q — p50 ≤ p95 ≤ p99, the ordering the
    /// trace_report check gate asserts on real runs.
    #[test]
    fn quantiles_are_monotone_in_q(values in arb_latencies()) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        prop_assert!(p50 <= p95 && p95 <= p99, "{} / {} / {}", p50, p95, p99);
    }

    /// Merging per-locality snapshots is associative and commutative, and
    /// agrees with recording everything into one histogram — so the order
    /// localities report in can never change the merged percentiles.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in arb_latencies(),
        b in arb_latencies(),
        c in arb_latencies(),
    ) {
        let hist_of = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ∪ b) ∪ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut right = hb.clone();
        right.merge(&hc);
        let mut assoc = ha.clone();
        assoc.merge(&right);
        // c ∪ b ∪ a
        let mut comm = hc.clone();
        comm.merge(&hb);
        comm.merge(&ha);
        // One histogram fed every observation directly.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&a);
        all.extend(&b);
        all.extend(&c);
        let direct = hist_of(&all);

        for q in [0.5, 0.95, 0.99] {
            let want = direct.quantile(q);
            prop_assert_eq!(left.quantile(q), want);
            prop_assert_eq!(assoc.quantile(q), want);
            prop_assert_eq!(comm.quantile(q), want);
        }
        prop_assert_eq!(left.count(), direct.count());
        prop_assert_eq!(assoc.count(), direct.count());
        prop_assert_eq!(comm.count(), direct.count());
        prop_assert_eq!(left.sum(), direct.sum());
    }
}
