//! Work-aggregation agreement suite: batched (fused mega-stream) execution
//! must be **bitwise identical** to the per-leaf path for every SIMD width
//! and batch size — including ragged tails (batch size that does not divide
//! the leaf count), flush-only seals (batch size > leaf count), split
//! monopole/multipole batch families, and refinement between steps.
//!
//! The per-leaf baseline is simply batch size 1 (`*_host_tasks = 1`), which
//! the aggregation layer guarantees degenerates to the historical graph.

use proptest::prelude::*;

use octotiger_riscv_repro::amt::Runtime;
use octotiger_riscv_repro::octotiger::{Driver, OctoConfig};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Level-1 rotating star: 8 leaves after the initial refinement pass, so a
/// batch size of 7 leaves a ragged 1-leaf tail and 16 / `leaves + 1` seal
/// only on flush.
fn config(width: usize, futurize: bool, batches: (usize, usize, usize)) -> OctoConfig {
    OctoConfig {
        max_level: 1,
        stop_step: 2,
        threads: 2,
        simd_width: width,
        futurize,
        monopole_host_tasks: batches.0,
        multipole_host_tasks: batches.1,
        hydro_host_tasks: batches.2,
        ..OctoConfig::default()
    }
}

/// Run `stop_step` steps (optionally refining one leaf between the first and
/// second step) and return the bit-exact observable state: the simulation
/// time and every leaf's interior data, in leaf order.
fn run(cfg: OctoConfig, refine_between: bool) -> (u64, Vec<Vec<f64>>) {
    let steps = cfg.stop_step;
    let threads = cfg.threads;
    let mut d = Driver::new(cfg);
    let rt = Runtime::new(threads);
    for s in 0..steps {
        d.step(&rt);
        if refine_between && s == 0 {
            let victim = d.tree().leaf_ids()[0];
            d.refine_leaf(victim);
        }
    }
    let data = d
        .tree()
        .leaf_ids()
        .iter()
        .map(|&leaf| d.tree().subgrid(leaf).interior_data())
        .collect();
    (d.sim_time().to_bits(), data)
}

fn assert_bitwise(base: &(u64, Vec<Vec<f64>>), got: &(u64, Vec<Vec<f64>>), label: &str) {
    assert_eq!(got.0, base.0, "sim_time bits diverged: {label}");
    assert_eq!(got.1.len(), base.1.len(), "leaf count diverged: {label}");
    for (i, (a, b)) in base.1.iter().zip(&got.1).enumerate() {
        let same = a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "leaf {i} interior data diverged: {label}");
    }
}

/// The ISSUE's core matrix: W ∈ {1, 2, 4, 8} × batch ∈ {1, 2, 7, 16,
/// leaves + 1} on the futurized per-batch task graph.
#[test]
fn batched_futurized_matches_per_leaf_for_all_widths() {
    for w in WIDTHS {
        let base = run(config(w, true, (1, 1, 1)), false);
        let leaves = base.1.len();
        for b in [2, 7, 16, leaves + 1] {
            let got = run(config(w, true, (b, b, b)), false);
            assert_bitwise(&base, &got, &format!("futurized w={w} batch={b}"));
        }
    }
}

/// Barriered mode goes through the same aggregation regions; spot-check the
/// matrix at one representative width.
#[test]
fn batched_barriered_matches_per_leaf() {
    let base = run(config(4, false, (1, 1, 1)), false);
    let leaves = base.1.len();
    for b in [2, 7, leaves + 1] {
        let got = run(config(4, false, (b, b, b)), false);
        assert_bitwise(&base, &got, &format!("barriered batch={b}"));
    }
}

/// `monopole_host_tasks != multipole_host_tasks` takes the split path (two
/// batch families joined per leaf by a pending counter) instead of the
/// unified gravity batch — it must still be bit-exact.
#[test]
fn split_gravity_batch_families_match_unified_path() {
    for futurize in [true, false] {
        let base = run(config(4, futurize, (1, 1, 1)), false);
        for (mono, multi, hydro) in [(2, 5, 3), (7, 2, 16), (1, 4, 1)] {
            let got = run(config(4, futurize, (mono, multi, hydro)), false);
            assert_bitwise(
                &base,
                &got,
                &format!("split futurize={futurize} mono={mono} multi={multi} hydro={hydro}"),
            );
        }
    }
}

/// Refining a leaf between steps changes the leaf count mid-run (and
/// invalidates the interaction cache); batch boundaries shift but the state
/// must stay bit-exact against the per-leaf run with the same refinement.
#[test]
fn refine_between_steps_stays_bitwise_equal() {
    for futurize in [true, false] {
        let base = run(config(4, futurize, (1, 1, 1)), true);
        let leaves = base.1.len();
        for b in [2, 7, leaves + 1] {
            let got = run(config(4, futurize, (b, b, b)), true);
            assert_bitwise(
                &base,
                &got,
                &format!("refine futurize={futurize} batch={b}"),
            );
        }
    }
}

/// Aggregation must actually aggregate: with batch size > 1 the driver fuses
/// launches (fewer `amt` tasks) and the counters record the seals.
#[test]
fn aggregation_reduces_spawned_tasks_and_records_seals() {
    let mut per_leaf = Driver::new(config(4, true, (1, 1, 1)));
    let m1 = per_leaf.run(2);
    let s1 = per_leaf.aggregation_stats();
    // `fused_launches` counts sealed batches; at batch size 1 every batch
    // holds exactly one leaf, so the average degenerates to 1.
    assert_eq!(s1.batch_size_avg(), 1.0, "batch size 1 must not aggregate");

    let mut batched = Driver::new(config(4, true, (4, 4, 4)));
    let m4 = batched.run(2);
    let s4 = batched.aggregation_stats();
    assert!(
        s4.fused_launches > 0,
        "batched run recorded no fused launches"
    );
    assert!(
        s4.batch_size_avg() > 1.0,
        "fused batches averaged <= 1 leaf"
    );
    assert!(
        s4.seals_on_full + s4.seals_on_flush > 0,
        "no seals recorded"
    );
    assert!(
        m4.runtime_stats.tasks_spawned < m1.runtime_stats.tasks_spawned,
        "batching did not reduce task count: {} vs {}",
        m4.runtime_stats.tasks_spawned,
        m1.runtime_stats.tasks_spawned
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corner of the matrix: independent batch sizes per kernel
    /// family, random width and execution mode.
    #[test]
    fn random_batch_combos_match_per_leaf(
        wi in 0usize..WIDTHS.len(),
        mono in 1usize..12,
        multi in 1usize..12,
        hydro in 1usize..12,
        futurize in any::<bool>(),
    ) {
        let w = WIDTHS[wi];
        let base = run(config(w, futurize, (1, 1, 1)), false);
        let got = run(config(w, futurize, (mono, multi, hydro)), false);
        prop_assert_eq!(got.0, base.0, "sim_time bits diverged");
        prop_assert_eq!(&got.1, &base.1, "interior data diverged");
    }
}
