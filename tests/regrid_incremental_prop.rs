//! Incremental interaction-list invalidation agreement suite: after any
//! sequence of mid-run regrid sweeps, the incrementally maintained cache
//! (retained lists spliced around the rebuilt neighbour cone) must leave the
//! simulation **bitwise identical** to the full-rebuild ablation
//! (`--interaction_list_cache=off`, which re-traverses every leaf every
//! step) — across SIMD widths, regrid batch sizes, and both the barriered
//! and futurized step graphs.
//!
//! A separate counter check pins the point of the tentpole: a mid-run sweep
//! must *retain* most lists (`/gravity/cache/leaves_retained`), and the
//! retained leaves must not be counted as rebuilt.

use proptest::prelude::*;

use octotiger_riscv_repro::amt::Runtime;
use octotiger_riscv_repro::octotiger::{Driver, OctoConfig};

const WIDTHS: [usize; 3] = [1, 4, 8];

fn config(width: usize, futurize: bool, cache: bool, regrid_batch: usize) -> OctoConfig {
    OctoConfig {
        max_level: 1,
        stop_step: 3,
        threads: 2,
        simd_width: width,
        futurize,
        use_interaction_cache: cache,
        regrid_host_tasks: regrid_batch,
        ..OctoConfig::default()
    }
}

/// Run `stop_step` steps, regridding the leaves named by `plan[s]` (indices
/// into the current leaf order, deduplicated by the sweep itself) after step
/// `s`. Returns the bit-exact observable state and the driver for counter
/// inspection.
fn run(cfg: OctoConfig, plan: &[Vec<usize>]) -> ((u64, Vec<Vec<f64>>), Driver) {
    let steps = cfg.stop_step as usize;
    let threads = cfg.threads;
    let mut d = Driver::new(cfg);
    let rt = Runtime::new(threads);
    for s in 0..steps {
        d.step(&rt);
        if let Some(picks) = plan.get(s) {
            let leaves: Vec<_> = picks
                .iter()
                .map(|&i| d.tree().leaf_ids()[i % d.tree().leaf_count()])
                .collect();
            d.regrid(&rt, &leaves);
        }
    }
    let data = d
        .tree()
        .leaf_ids()
        .iter()
        .map(|&leaf| d.tree().subgrid(leaf).interior_data())
        .collect();
    ((d.sim_time().to_bits(), data), d)
}

fn assert_bitwise(base: &(u64, Vec<Vec<f64>>), got: &(u64, Vec<Vec<f64>>), label: &str) {
    assert_eq!(got.0, base.0, "sim_time bits diverged: {label}");
    assert_eq!(got.1.len(), base.1.len(), "leaf count diverged: {label}");
    for (i, (a, b)) in base.1.iter().zip(&got.1).enumerate() {
        let same = a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "leaf {i} interior data diverged: {label}");
    }
}

/// The deterministic core matrix: W ∈ {1, 4, 8} × barriered/futurized ×
/// regrid batch ∈ {1, 3, 64}, with two sweeps (one multi-leaf, one single)
/// landing between the steps.
#[test]
fn incremental_matches_full_rebuild_across_widths_and_modes() {
    let plan = vec![vec![0, 3, 5], vec![1]];
    for w in WIDTHS {
        for futurize in [true, false] {
            let (base, _) = run(config(w, futurize, false, 1), &plan);
            for batch in [1, 3, 64] {
                let (got, d) = run(config(w, futurize, true, batch), &plan);
                assert_bitwise(
                    &base,
                    &got,
                    &format!("w={w} futurize={futurize} regrid_batch={batch}"),
                );
                let cs = d.cache_stats();
                assert!(
                    cs.partial_rebuilds >= 1,
                    "mid-run sweeps must take the incremental path (w={w} \
                     futurize={futurize}): {cs:?}"
                );
            }
        }
    }
}

/// The tentpole's accounting contract at a depth where neighbour cones are
/// strictly local: a single split at level 2 (64 leaves) must rebuild only
/// the cone and *retain* the rest — and retained leaves are not rebuilt
/// (the two counters partition every leaf the partial sweeps visited).
#[test]
fn partial_rebuild_retains_leaves_outside_the_neighbour_cone() {
    let cfg = OctoConfig {
        max_level: 2,
        stop_step: 2,
        threads: 2,
        ..OctoConfig::default()
    };
    let mut d = Driver::new(cfg);
    let rt = Runtime::new(2);
    d.step(&rt);
    let before = d.cache_stats();
    assert_eq!(before.partial_rebuilds, 0);
    let victim = d.tree().leaf_ids()[0]; // a corner leaf: small cone
    let report = d.regrid(&rt, &[victim]);
    assert_eq!(report.leaves_refined, 1, "corner split needs no grading");
    d.step(&rt);
    // The stats are cumulative (the cold build counts every leaf as
    // rebuilt); the sweep's effect is the delta across the second step.
    let cs = d.cache_stats();
    let rebuilt = cs.leaves_rebuilt - before.leaves_rebuilt;
    let retained = cs.leaves_retained - before.leaves_retained;
    let leaves = d.tree().leaf_count() as u64;
    assert_eq!(cs.partial_rebuilds, 1, "{cs:?}");
    assert_eq!(
        rebuilt + retained,
        leaves,
        "rebuilt + retained must partition the leaf set: {cs:?}"
    );
    assert!(
        retained > 0,
        "a corner split must retain lists outside its cone: {cs:?}"
    );
    assert!(
        rebuilt < leaves,
        "retained leaves must not be rebuilt: {cs:?}"
    );
    // The deep-tree gate in miniature: the cone is a small minority.
    assert!(
        rebuilt * 2 < leaves,
        "one corner split should rebuild a minority of {leaves} leaves: {cs:?}"
    );
}

/// Regression: one sweep early in the run, then cache *hits* for the rest.
/// This is the shape that exposed the moment-dependent MAC — with the COM
/// in the opening test, lists built at different steps disagreed and a
/// cached hit diverged from the rebuild-every-step ablation. The geometric
/// MAC makes lists a pure function of (topology, θ), so hit == rebuild.
#[test]
fn single_sweep_then_cache_hits_match_full_rebuild() {
    let plan = vec![vec![23, 30]];
    let (base, _) = run(config(1, true, false, 1), &plan);
    let (got, d) = run(config(1, true, true, 13), &plan);
    assert_bitwise(&base, &got, "single sweep then hits");
    let cs = d.cache_stats();
    assert_eq!(cs.partial_rebuilds, 1, "{cs:?}");
    assert!(cs.hits >= 1, "later steps must hit: {cs:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized refine sequences: up to three sweeps of up to three leaf
    /// picks each, random width/mode/batch. Incremental must stay bitwise
    /// equal to the full-rebuild ablation under every history.
    #[test]
    fn random_refine_sequences_match_full_rebuild(
        wi in 0usize..WIDTHS.len(),
        futurize in any::<bool>(),
        batch in 1usize..20,
        picks in proptest::collection::vec(
            proptest::collection::vec(0usize..32, 0..3), 1..3),
    ) {
        let w = WIDTHS[wi];
        let (base, _) = run(config(w, futurize, false, 1), &picks);
        let (got, d) = run(config(w, futurize, true, batch), &picks);
        prop_assert_eq!(got.0, base.0, "sim_time bits diverged");
        prop_assert_eq!(&got.1, &base.1, "interior data diverged");
        let cs = d.cache_stats();
        prop_assert!(
            cs.leaves_rebuilt + cs.leaves_retained >= cs.leaves_rebuilt,
            "counters overflowed"
        );
    }
}
