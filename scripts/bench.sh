#!/usr/bin/env bash
# Gravity benchmark baseline: runs the criterion-style gravity/octotiger
# benches in release mode and refreshes BENCH_gravity.json at the repo root
# (the cross-PR baseline series — commit the refreshed file).
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   one short iteration for CI; does NOT rewrite BENCH_gravity.json
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

echo "== gravity SIMD + interaction-cache bench (writes BENCH_gravity.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_gravity

echo "== hydro SIMD + futurization bench (writes BENCH_hydro.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_hydro

echo "== tracer overhead bench (writes BENCH_trace_overhead.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_trace

if [[ "$SMOKE" == "0" ]]; then
  echo "== octotiger kernel bench (stdout reference numbers) =="
  cargo bench -q -p repro-bench --bench bench_octotiger

  echo
  echo "BENCH_gravity.json updated:"
  cat BENCH_gravity.json
  echo
  echo "BENCH_hydro.json updated:"
  cat BENCH_hydro.json
  echo
  echo "BENCH_trace_overhead.json updated:"
  cat BENCH_trace_overhead.json
fi
