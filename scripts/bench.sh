#!/usr/bin/env bash
# Gravity benchmark baseline: runs the criterion-style gravity/octotiger
# benches in release mode and refreshes BENCH_gravity.json at the repo root
# (the cross-PR baseline series — commit the refreshed file).
#
# Usage: scripts/bench.sh [--smoke]
#   --smoke   one short iteration for CI; does NOT rewrite BENCH_gravity.json
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

# Full runs compile for the host CPU so wide f64 packs lower to real vector
# registers (AVX-512/AVX2/RVV) instead of split baseline ops — the JSON
# headers record both the host and the compiled ISA, so the committed series
# stays self-describing across machines. On AVX-512 x86 LLVM additionally
# defaults to `prefer-256-bit` (downclock mitigation), which lowers the
# 8-lane f64 packs to two ymm halves and makes W8 pure overhead over W4;
# `-prefer-256-bit` is dropped so W8 gets real zmm registers. Smoke runs
# keep default flags (CI determinism, no full-workspace rebuild churn).
# Override: BENCH_RUSTFLAGS.
if [[ "$SMOKE" == "0" ]]; then
  NATIVE="-C target-cpu=native"
  if [[ "$(uname -m)" == "x86_64" ]]; then
    NATIVE="$NATIVE -C target-feature=-prefer-256-bit"
  fi
  export RUSTFLAGS="${BENCH_RUSTFLAGS:-$NATIVE}"
  echo "full bench run: RUSTFLAGS=$RUSTFLAGS"
fi

echo "== gravity SIMD + interaction-cache bench (writes BENCH_gravity.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_gravity

echo "== hydro SIMD + futurization bench (writes BENCH_hydro.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_hydro

echo "== tracer overhead bench (writes BENCH_trace_overhead.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_trace

echo "== deep-tree scale bench (writes BENCH_scale.json) =="
BENCH_SMOKE=$SMOKE cargo bench -q -p repro-bench --bench bench_scale

if [[ "$SMOKE" == "0" ]]; then
  echo "== octotiger kernel bench (stdout reference numbers) =="
  cargo bench -q -p repro-bench --bench bench_octotiger

  echo
  echo "BENCH_gravity.json updated:"
  cat BENCH_gravity.json
  echo
  echo "BENCH_hydro.json updated:"
  cat BENCH_hydro.json
  echo
  echo "BENCH_trace_overhead.json updated:"
  cat BENCH_trace_overhead.json
  echo
  echo "BENCH_scale.json updated:"
  cat BENCH_scale.json
fi
