#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from anywhere; operates on
# the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== SIMD/scalar kernel agreement =="
cargo test -q -p octotiger dispatch_backends_agree_on_gravity
cargo test -q --test simd_gravity_prop
cargo test -q --test simd_hydro_prop

echo "== work-aggregation agreement (batched == per-leaf, bitwise) =="
cargo test -q --test aggregation_prop

echo "== incremental regrid agreement (incremental == full rebuild, bitwise) =="
cargo test -q --test regrid_incremental_prop

echo "== gravity bench smoke (one short iteration, no timing assertions) =="
BENCH_SMOKE=1 BENCH_HOST_TASKS=1 cargo bench -q -p repro-bench --bench bench_gravity
BENCH_SMOKE=1 BENCH_HOST_TASKS=16 cargo bench -q -p repro-bench --bench bench_gravity

echo "== hydro bench smoke =="
BENCH_SMOKE=1 BENCH_HOST_TASKS=1 cargo bench -q -p repro-bench --bench bench_hydro
BENCH_SMOKE=1 BENCH_HOST_TASKS=16 cargo bench -q -p repro-bench --bench bench_hydro

echo "== tracer overhead bench smoke =="
BENCH_SMOKE=1 cargo bench -q -p repro-bench --bench bench_trace

echo "== deep-tree scale smoke (level 4, mid-run regrid rebuilds < 25% of lists) =="
BENCH_SMOKE=1 cargo bench -q -p repro-bench --bench bench_scale

echo "== bench-regression gate (self-test + committed baselines) =="
cargo run --release -p repro-bench --bin bench_diff -- --self-test
BENCH_SMOKE=1 cargo run --release -p repro-bench --bin bench_diff

echo "== trace smoke run + checker + analyzer (coalesced, flow events) =="
TRACE_OUT=$(mktemp -t apexlite_ci_XXXXXX.json)
FLAME_OUT=$(mktemp -t apexlite_flame_XXXXXX.txt)
cargo run --release --example distributed_cluster -- \
  --max_level=1 --stop_step=2 --hpx:threads=2 --sample_interval_ms=5 \
  --coalesce=on --trace-out="$TRACE_OUT" >/dev/null
# --require-flow: the 2-locality run must pair every received parcel's
# "f" flow event with its sender's "s" (the Perfetto arrows exist).
cargo run --release -p apex-lite --bin trace_check -- \
  --require task,phase,comm --min-spans 10 --require-flow "$TRACE_OUT"
# trace_report --check: non-empty critical path within the wall window,
# utilization rows, the cluster-wide imbalance + parcel-latency series,
# a non-empty flamegraph, and (on a multi-locality trace with flows) a
# distributed critical path that routes through >= 1 network leg, bounds
# every single-locality path, and carries ordered latency percentiles
# with histogram count == parcels delivered.
cargo run --release -p apex-lite --bin trace_report -- \
  --check --require-counter=/runtime/imbalance \
  --require-counter=/comms/parcel_latency --flame-out="$FLAME_OUT" \
  "$TRACE_OUT"
test -s "$FLAME_OUT"
rm -f "$TRACE_OUT" "$FLAME_OUT"

# The overlap gates run at level 2 (64 leaves): on single-core CI hosts,
# overlap of two span families depends on the OS preempting a worker
# mid-span, and level-1 runs are short enough to miss that window ~40% of
# the time. Level 2 gives each family ~10x the open-span time and passes
# deterministically (measured 10/10 on a 1-core box vs 6/10 at level 1).
echo "== futurized trace: gravity/hydro spans must overlap =="
TRACE_FUT=$(mktemp -t apexlite_fut_XXXXXX.json)
cargo run --release --example rotating_star -- \
  --max_level=2 --stop_step=3 --hpx:threads=4 --futurize=on \
  --trace-out="$TRACE_FUT" >/dev/null
cargo run --release -p apex-lite --bin trace_check -- \
  --require-overlap=gravity_solve,hydro_step "$TRACE_FUT"
rm -f "$TRACE_FUT"

echo "== aggregated futurized trace: batched launches, overlap preserved =="
TRACE_AGG=$(mktemp -t apexlite_agg_XXXXXX.json)
cargo run --release --example rotating_star -- \
  --max_level=2 --stop_step=3 --hpx:threads=4 --futurize=on \
  --monopole_host_tasks=4 --multipole_host_tasks=4 --hydro_host_tasks=4 \
  --trace-out="$TRACE_AGG" >/dev/null
cargo run --release -p apex-lite --bin trace_check -- \
  --require aggregate_launch \
  --require-overlap=gravity_solve,hydro_step "$TRACE_AGG"
rm -f "$TRACE_AGG"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "CI OK"
