#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from anywhere; operates on
# the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "CI OK"
