#!/usr/bin/env bash
# Tier-1 CI gate: build, test, format, lint. Run from anywhere; operates on
# the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== SIMD/scalar kernel agreement =="
cargo test -q -p octotiger dispatch_backends_agree_on_gravity
cargo test -q --test simd_gravity_prop

echo "== gravity bench smoke (one short iteration, no timing assertions) =="
BENCH_SMOKE=1 cargo bench -q -p repro-bench --bench bench_gravity

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "CI OK"
