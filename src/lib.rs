//! Umbrella crate for the Rust reproduction of
//! *"Evaluating HPX and Kokkos on RISC-V using an Astrophysics Application
//! Octo-Tiger"* (SC'23 workshops).
//!
//! This crate only re-exports the workspace members so that the repository's
//! `examples/` and `tests/` can exercise the whole stack through one
//! dependency. See `DESIGN.md` for the system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record.

pub use amt;
pub use apex_lite;
pub use distrib;
pub use kokkos_lite;
pub use octo_core;
pub use octotiger;
pub use rv_machine as machine;
